// Package mi implements the paper's channel-measurement methodology
// (§5.1): mutual information between discrete inputs (the sender's
// secrets) and continuous outputs (the receiver's time measurements),
// estimated with Gaussian kernel density estimation and the rectangle
// method, plus the Chothia-Guha shuffle test that distinguishes sampling
// noise from a significant leak.
package mi

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Resolution is the measurement floor of the toolchain in bits: the
// paper's apparatus resolves about one millibit; estimates below this
// are reported but cannot evidence a leak.
const Resolution = 0.001

// Dataset holds (input symbol, output measurement) sample pairs.
type Dataset struct {
	inputs  []int
	outputs []float64

	// Grouping memo, built lazily on first use and invalidated by Add.
	// Estimate, Matrix and ShuffleBound all need the outputs grouped by
	// input symbol; recomputing that grouping per call dominated the
	// shuffle test's 100 rounds.
	memoBuilt  bool
	memoN      int
	memoInputs []int       // distinct input symbols, ascending
	memoSlot   map[int]int // input symbol -> index into memoInputs
	memoIdx    [][]int     // sample indices per distinct input
	memoGroups [][]float64 // outputs per distinct input, sample order

	// Backing arrays the memo's per-class slices are carved from, reused
	// across rebuilds.
	memoIdxBack    []int
	memoGroupsBack []float64
}

// Add records one observation.
func (d *Dataset) Add(input int, output float64) {
	d.inputs = append(d.inputs, input)
	d.outputs = append(d.outputs, output)
}

// Reserve pre-sizes the dataset for at least n samples, so receivers
// that know their sample target up front collect without reallocating.
func (d *Dataset) Reserve(n int) {
	if cap(d.inputs) < n {
		inputs := make([]int, len(d.inputs), n)
		copy(inputs, d.inputs)
		d.inputs = inputs
	}
	if cap(d.outputs) < n {
		outputs := make([]float64, len(d.outputs), n)
		copy(outputs, d.outputs)
		d.outputs = outputs
	}
}

// N returns the number of samples.
func (d *Dataset) N() int { return len(d.inputs) }

// Clone returns an independent copy of the dataset's samples. The copy
// shares nothing — not even the lazy grouping memo — so memoized
// datasets can be handed to concurrent consumers safely.
func (d *Dataset) Clone() *Dataset {
	return &Dataset{
		inputs:  append([]int(nil), d.inputs...),
		outputs: append([]float64(nil), d.outputs...),
	}
}

// Sample is one (input symbol, output measurement) observation in
// collection order — the unit incremental consumers (the session API's
// step results) read back out of a growing dataset.
type Sample struct {
	Input  int
	Output float64
}

// At returns the i-th sample in collection order.
func (d *Dataset) At(i int) Sample {
	return Sample{Input: d.inputs[i], Output: d.outputs[i]}
}

// Since returns the samples collected at or after index from, in
// collection order (a copy; empty when from >= N).
func (d *Dataset) Since(from int) []Sample {
	if from < 0 {
		from = 0
	}
	if from >= len(d.inputs) {
		return nil
	}
	out := make([]Sample, len(d.inputs)-from)
	for i := range out {
		out[i] = Sample{Input: d.inputs[from+i], Output: d.outputs[from+i]}
	}
	return out
}

// refreshGroups (re)builds the grouping memo if samples were added (or
// the dataset was constructed directly) since it was last built.
func (d *Dataset) refreshGroups() {
	if d.memoBuilt && d.memoN == len(d.inputs) {
		return
	}
	if d.memoSlot == nil {
		d.memoSlot = make(map[int]int)
	} else {
		clear(d.memoSlot)
	}
	d.memoInputs = d.memoInputs[:0]
	for _, in := range d.inputs {
		if _, ok := d.memoSlot[in]; !ok {
			d.memoSlot[in] = 0
			d.memoInputs = append(d.memoInputs, in)
		}
	}
	sort.Ints(d.memoInputs)
	for i, in := range d.memoInputs {
		d.memoSlot[in] = i
	}
	k := len(d.memoInputs)
	// Count each class's samples, then carve the per-class slices out of
	// two reusable backing arrays; growing every class with bare append
	// reallocated the whole memo on each rebuild.
	counts := make([]int, k)
	for _, in := range d.inputs {
		counts[d.memoSlot[in]]++
	}
	n := len(d.inputs)
	if cap(d.memoIdx) < k {
		d.memoIdx = make([][]int, k)
	}
	if cap(d.memoGroups) < k {
		d.memoGroups = make([][]float64, k)
	}
	d.memoIdx = d.memoIdx[:k]
	d.memoGroups = d.memoGroups[:k]
	if cap(d.memoIdxBack) < n {
		d.memoIdxBack = make([]int, n)
	}
	if cap(d.memoGroupsBack) < n {
		d.memoGroupsBack = make([]float64, n)
	}
	ib, gb := d.memoIdxBack[:n], d.memoGroupsBack[:n]
	off := 0
	for s := 0; s < k; s++ {
		d.memoIdx[s] = ib[off : off : off+counts[s]]
		d.memoGroups[s] = gb[off : off : off+counts[s]]
		off += counts[s]
	}
	for i, in := range d.inputs {
		s := d.memoSlot[in]
		d.memoIdx[s] = append(d.memoIdx[s], i)
		d.memoGroups[s] = append(d.memoGroups[s], d.outputs[i])
	}
	d.memoBuilt = true
	d.memoN = len(d.inputs)
}

// Inputs returns the distinct input symbols in ascending order.
func (d *Dataset) Inputs() []int {
	d.refreshGroups()
	return append([]int(nil), d.memoInputs...)
}

// OutputsFor returns the outputs observed for one input (copy).
func (d *Dataset) OutputsFor(input int) []float64 {
	d.refreshGroups()
	s, ok := d.memoSlot[input]
	if !ok {
		return nil
	}
	return append([]float64(nil), d.memoGroups[s]...)
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return
}

// silverman computes the KDE bandwidth h = 1.06 sigma n^(-1/5)
// [Silverman 1986], with a floor to keep degenerate (constant-output)
// classes integrable.
func silverman(xs []float64, floor float64) float64 {
	_, std := meanStd(xs)
	h := 1.06 * std * math.Pow(float64(len(xs)), -0.2)
	if h < floor {
		h = floor
	}
	return h
}

// gridPoints is the resolution of the rectangle-method integration.
const gridPoints = 512

// Estimate computes the mutual information M (in bits) between a
// uniform distribution over the dataset's input symbols and the
// observed continuous outputs, as in the paper: per-input output
// densities are estimated by Gaussian KDE and the integral is taken by
// the rectangle method. The densities are evaluated by linear-binned
// KDE (see kde.go), which agrees with the direct per-sample sum to well
// below the toolchain's millibit resolution.
func Estimate(d *Dataset) float64 {
	d.refreshGroups()
	if len(d.memoGroups) < 2 || len(d.inputs) == 0 {
		return 0
	}
	e := estimators.Get().(*estimator)
	m := e.estimate(d.memoGroups, d.outputs)
	estimators.Put(e)
	return m
}

// splitmixSource is a tiny reseedable rand.Source64 (splitmix64). Each
// shuffle round reseeds one per-worker instance instead of allocating a
// fresh 5 KB lagged-Fibonacci source.
type splitmixSource struct{ state uint64 }

func (s *splitmixSource) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmixSource) Int63() int64    { return int64(s.Uint64() >> 1) }
func (s *splitmixSource) Seed(seed int64) { s.state = uint64(seed) }

// roundSeed derives the RNG seed for one shuffle round from the base
// seed drawn from the caller's RNG (splitmix64 finalizer), so every
// round has an independent, deterministic stream no matter which worker
// runs it.
func roundSeed(base int64, round int) int64 {
	z := uint64(base) + uint64(round+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// ShuffleBound implements the zero-leakage significance test: outputs
// are randomly reassigned to inputs `rounds` times (destroying any
// input/output relation while preserving the marginal distributions),
// MI is estimated for each shuffled dataset, and the one-sided 95%
// confidence bound M0 = mean + 1.645 sigma is returned. An estimate
// M > M0 on the original data evidences a leak.
//
// The rounds run concurrently across GOMAXPROCS goroutines. Exactly one
// value is drawn from rng to seed the per-round shuffle streams, so the
// result depends only on the dataset and the rng state at the call —
// not on GOMAXPROCS or scheduling.
func ShuffleBound(d *Dataset, rounds int, rng *rand.Rand) float64 {
	if rounds <= 0 {
		rounds = 100
	}
	d.refreshGroups()
	base := rng.Int63()
	n := len(d.outputs)
	ms := make([]float64, rounds)
	workers := runtime.GOMAXPROCS(0)
	if workers > rounds {
		workers = rounds
	}
	if workers < 1 {
		workers = 1
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := estimators.Get().(*estimator)
			defer estimators.Put(e)
			perm := make([]float64, n)
			// Per-worker class buffers: the grouping (which sample index
			// belongs to which input) is fixed under shuffling; only the
			// values move.
			backing := make([]float64, n)
			groups := make([][]float64, len(d.memoIdx))
			off := 0
			for c, idx := range d.memoIdx {
				groups[c] = backing[off : off+len(idx)]
				off += len(idx)
			}
			src := &splitmixSource{}
			rr := rand.New(src)
			for {
				r := int(atomic.AddInt64(&next, 1)) - 1
				if r >= rounds {
					return
				}
				src.Seed(roundSeed(base, r))
				copy(perm, d.outputs)
				rr.Shuffle(n, func(i, j int) {
					perm[i], perm[j] = perm[j], perm[i]
				})
				for c, idx := range d.memoIdx {
					for i, s := range idx {
						groups[c][i] = perm[s]
					}
				}
				if len(groups) < 2 || n == 0 {
					ms[r] = 0
					continue
				}
				ms[r] = e.estimate(groups, perm)
			}
		}()
	}
	wg.Wait()
	mean, std := meanStd(ms)
	return mean + 1.645*std
}

// Result is a complete channel measurement.
type Result struct {
	M  float64 // estimated mutual information, bits per observation
	M0 float64 // zero-leakage 95% bound
	N  int     // sample count
}

// Leak reports whether the measurement evidences an information leak:
// M strictly exceeds M0 (the strict inequality matters for perfectly
// uniform data, §5.1) and is above the tool's resolution.
func (r Result) Leak() bool { return r.M > r.M0 && r.M >= Resolution }

// Millibits formats a bit value in the paper's mb unit.
func Millibits(bits float64) float64 { return bits * 1000 }

func (r Result) String() string {
	return fmt.Sprintf("M=%.1fmb M0=%.1fmb n=%d leak=%v",
		Millibits(r.M), Millibits(r.M0), r.N, r.Leak())
}

// Analyze estimates M and M0 for a dataset with the default 100 shuffle
// rounds.
func Analyze(d *Dataset, rng *rand.Rand) Result {
	return Result{M: Estimate(d), M0: ShuffleBound(d, 100, rng), N: d.N()}
}

// ErrEmptyDataset is returned by loaders for datasets with no samples.
var ErrEmptyDataset = errors.New("mi: empty dataset")
