package mi

import (
	"math"
	"math/rand"
	"testing"
)

// matrix builds a ChannelMatrix from explicit rows.
func matrix(rows [][]float64) ChannelMatrix {
	m := ChannelMatrix{P: rows}
	for i := range rows {
		m.Inputs = append(m.Inputs, i)
	}
	return m
}

func TestCapacityNoiselessChannel(t *testing.T) {
	// A noiseless 4-ary channel has capacity log2(4) = 2.
	m := matrix([][]float64{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 1, 0},
		{0, 0, 0, 1},
	})
	if c := Capacity(m); math.Abs(c-2) > 1e-6 {
		t.Fatalf("noiseless capacity = %f, want 2", c)
	}
}

func TestCapacityBSC(t *testing.T) {
	// Binary symmetric channel with crossover e: C = 1 - H2(e).
	for _, e := range []float64{0.05, 0.11, 0.25} {
		m := matrix([][]float64{
			{1 - e, e},
			{e, 1 - e},
		})
		h2 := -e*math.Log2(e) - (1-e)*math.Log2(1-e)
		want := 1 - h2
		if c := Capacity(m); math.Abs(c-want) > 1e-6 {
			t.Fatalf("BSC(%f) capacity = %f, want %f", e, c, want)
		}
	}
}

func TestCapacityBEC(t *testing.T) {
	// Binary erasure channel: C = 1 - erasure probability. The optimal
	// input is uniform, but the check exercises a 3-output matrix.
	e := 0.3
	m := matrix([][]float64{
		{1 - e, e, 0},
		{0, e, 1 - e},
	})
	if c := Capacity(m); math.Abs(c-(1-e)) > 1e-6 {
		t.Fatalf("BEC(%f) capacity = %f, want %f", e, c, 1-e)
	}
}

func TestCapacityUselessChannel(t *testing.T) {
	m := matrix([][]float64{
		{0.5, 0.5},
		{0.5, 0.5},
	})
	if c := Capacity(m); c > 1e-9 {
		t.Fatalf("useless channel capacity = %g, want 0", c)
	}
}

func TestCapacityAsymmetricInput(t *testing.T) {
	// Z-channel with p=0.5: known capacity log2(5/2) - wait; use the
	// standard result C = log2(1 + (1-p) p^{p/(1-p)}) for crossover p on
	// one input only.
	p := 0.5
	m := matrix([][]float64{
		{1, 0},
		{p, 1 - p},
	})
	want := math.Log2(1 + (1-p)*math.Pow(p, p/(1-p)))
	if c := Capacity(m); math.Abs(c-want) > 1e-6 {
		t.Fatalf("Z-channel capacity = %f, want %f", c, want)
	}
}

func TestCapacityDegenerateMatrices(t *testing.T) {
	if c := Capacity(matrix([][]float64{{1, 0}})); c != 0 {
		t.Error("single-input channel must have zero capacity")
	}
	// All-zero rows are ignored.
	m := matrix([][]float64{
		{1, 0},
		{0, 0},
		{0, 1},
	})
	if c := Capacity(m); math.Abs(c-1) > 1e-6 {
		t.Errorf("capacity with dead row = %f, want 1", c)
	}
}

// Capacity upper-bounds uniform-input MI on the same matrix.
func TestCapacityBoundsUniformMI(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := gaussianDataset(rng, 1500, []float64{0, 12, 24, 36}, 6)
	cap := CapacityFromDataset(d, 24)
	m := Estimate(d)
	if cap+0.05 < m {
		t.Fatalf("capacity %f below uniform-input MI %f", cap, m)
	}
	if cap > 2.01 {
		t.Fatalf("capacity %f exceeds log2(inputs)", cap)
	}
}

func TestCapacityFromDatasetDegenerate(t *testing.T) {
	if CapacityFromDataset(&Dataset{}, 8) != 0 {
		t.Error("empty dataset capacity must be 0")
	}
	d := &Dataset{}
	d.Add(0, 1)
	if CapacityFromDataset(d, 8) != 0 {
		t.Error("single-input dataset capacity must be 0")
	}
}

func TestMinEntropyLeakageNoiseless(t *testing.T) {
	m := matrix([][]float64{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 1, 0},
		{0, 0, 0, 1},
	})
	if l := MinEntropyLeakage(m); math.Abs(l-2) > 1e-9 {
		t.Fatalf("noiseless leakage = %f, want 2", l)
	}
}

func TestMinEntropyLeakageUseless(t *testing.T) {
	m := matrix([][]float64{
		{0.25, 0.25, 0.25, 0.25},
		{0.25, 0.25, 0.25, 0.25},
	})
	if l := MinEntropyLeakage(m); l != 0 {
		t.Fatalf("useless channel leakage = %f, want 0", l)
	}
}

func TestMinEntropyLeakageBSC(t *testing.T) {
	// BSC(e): sum_y max = 2(1-e) -> L = 1 + log2(1-e).
	e := 0.1
	m := matrix([][]float64{
		{1 - e, e},
		{e, 1 - e},
	})
	want := 1 + math.Log2(1-e)
	if l := MinEntropyLeakage(m); math.Abs(l-want) > 1e-9 {
		t.Fatalf("BSC leakage = %f, want %f", l, want)
	}
}

func TestMinEntropyLeakageBoundsMI(t *testing.T) {
	// Min-entropy leakage upper-bounds Shannon capacity for
	// deterministic channels and is comparable in general; check the
	// sanity relation L >= 0 and L <= log2(k) on an empirical matrix.
	rng := rand.New(rand.NewSource(11))
	d := gaussianDataset(rng, 1200, []float64{0, 15, 30}, 6)
	l := MinEntropyLeakageFromDataset(d, 24)
	if l < 0 || l > math.Log2(3)+1e-9 {
		t.Fatalf("leakage %f out of [0, log2 3]", l)
	}
}

func TestMinEntropyLeakageDegenerate(t *testing.T) {
	if MinEntropyLeakageFromDataset(&Dataset{}, 8) != 0 {
		t.Error("empty dataset must leak 0")
	}
}
