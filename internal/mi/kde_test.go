package mi

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// kdeTolerance is the satellite requirement: the binned estimator must
// agree with the naive per-sample sum to within 1e-3 bits.
const kdeTolerance = 1e-3

func assertAgreement(t *testing.T, name string, d *Dataset) {
	t.Helper()
	fast := Estimate(d)
	naive := estimateNaive(d)
	if diff := math.Abs(fast - naive); diff > kdeTolerance {
		t.Errorf("%s: binned %.6f vs naive %.6f bits (diff %.2e > %.0e)",
			name, fast, naive, diff, kdeTolerance)
	}
}

func TestBinnedMatchesNaiveGaussians(t *testing.T) {
	cases := []struct {
		name  string
		means []float64
		std   float64
		n     int
	}{
		{"separated", []float64{0, 100, 200, 300}, 1, 800},
		{"overlapping", []float64{0, 10}, 8, 800},
		{"nearly-degenerate", []float64{50, 50.01}, 0.001, 400},
		{"wide-bandwidth", []float64{0, 5}, 40, 500},
		{"mixed-scales", []float64{0, 1, 300}, 0.5, 600},
	}
	for i, c := range cases {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		assertAgreement(t, c.name, gaussianDataset(rng, c.n, c.means, c.std))
	}
}

func TestBinnedMatchesNaiveDiscreteOutputs(t *testing.T) {
	// Integer-valued outputs (cache miss counts) drive the bandwidth to
	// its floor — the regime where the fine grid refines hardest.
	rng := rand.New(rand.NewSource(200))
	d := &Dataset{}
	for i := 0; i < 600; i++ {
		in := rng.Intn(4)
		d.Add(in, float64(20+5*in+rng.Intn(3)))
	}
	assertAgreement(t, "discrete", d)
}

func TestBinnedConstantClasses(t *testing.T) {
	d := &Dataset{}
	for i := 0; i < 100; i++ {
		d.Add(0, 10)
		d.Add(1, 20)
	}
	assertAgreement(t, "constant-classes", d)
	if m := Estimate(d); m < 0.9 {
		t.Errorf("deterministic binary channel M = %.3f, want ~1", m)
	}
}

func TestShuffleBoundGOMAXPROCSInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	d := gaussianDataset(rng, 400, []float64{0, 20, 40}, 10)
	run := func(procs int) float64 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		return ShuffleBound(d, 100, rand.New(rand.NewSource(9)))
	}
	m1 := run(1)
	m8 := run(8)
	if m1 != m8 {
		t.Fatalf("ShuffleBound differs across GOMAXPROCS: %v (1 proc) vs %v (8 procs)", m1, m8)
	}
}

func TestShuffleBoundDependsOnlyOnRNGState(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	d := gaussianDataset(rng, 200, []float64{0, 15}, 6)
	a := ShuffleBound(d, 50, rand.New(rand.NewSource(4)))
	b := ShuffleBound(d, 50, rand.New(rand.NewSource(4)))
	if a != b {
		t.Fatalf("same rng state gave different bounds: %v vs %v", a, b)
	}
	c := ShuffleBound(d, 50, rand.New(rand.NewSource(5)))
	if a == c {
		t.Fatal("different rng seeds should give different shuffle bounds")
	}
}

func TestGroupingMemoInvalidatedByAdd(t *testing.T) {
	d := &Dataset{}
	d.Add(0, 1)
	d.Add(1, 2)
	if got := d.Inputs(); len(got) != 2 {
		t.Fatalf("inputs = %v", got)
	}
	d.Add(2, 3)
	if got := d.Inputs(); len(got) != 3 {
		t.Fatalf("memo not invalidated by Add: inputs = %v", got)
	}
	if got := d.OutputsFor(2); len(got) != 1 || got[0] != 3 {
		t.Fatalf("OutputsFor(2) = %v", got)
	}
	// The returned slice must be a copy, not a view of the memo.
	got := d.OutputsFor(0)
	got[0] = 99
	if again := d.OutputsFor(0); again[0] != 1 {
		t.Fatalf("OutputsFor returned an aliased slice: %v", again)
	}
}

func benchDataset() *Dataset {
	rng := rand.New(rand.NewSource(42))
	return gaussianDataset(rng, 400, []float64{0, 30, 60, 90}, 12)
}

func BenchmarkEstimateBinned(b *testing.B) {
	d := benchDataset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Estimate(d)
	}
}

func BenchmarkEstimateNaive(b *testing.B) {
	d := benchDataset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		estimateNaive(d)
	}
}

func BenchmarkShuffleBound(b *testing.B) {
	d := benchDataset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ShuffleBound(d, 100, rand.New(rand.NewSource(7)))
	}
}
