package mi

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ChannelMatrix is the conditional probability of observing an output
// bin given an input symbol — the heat-map data of Figure 3.
type ChannelMatrix struct {
	Inputs   []int
	BinEdges []float64 // len = bins+1
	// P[i][b] = P(output in bin b | input Inputs[i]); rows sum to 1
	// (up to rounding) when the input has samples.
	P [][]float64
}

// Matrix bins the dataset's outputs into `bins` equal-width bins over
// the observed range and returns the conditional distribution per input.
func Matrix(d *Dataset, bins int) ChannelMatrix {
	d.refreshGroups()
	inputs := append([]int(nil), d.memoInputs...)
	lo, hi := 0.0, 1.0
	if d.N() > 0 {
		lo, hi = d.outputs[0], d.outputs[0]
		for _, x := range d.outputs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	edges := make([]float64, bins+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(bins)
	}
	m := ChannelMatrix{Inputs: inputs, BinEdges: edges}
	for s := range inputs {
		row := make([]float64, bins)
		xs := d.memoGroups[s]
		for _, x := range xs {
			b := int(float64(bins) * (x - lo) / (hi - lo))
			if b >= bins {
				b = bins - 1
			}
			if b < 0 {
				b = 0
			}
			row[b]++
		}
		if len(xs) > 0 {
			for b := range row {
				row[b] /= float64(len(xs))
			}
		}
		m.P = append(m.P, row)
	}
	return m
}

// WriteCSV emits the dataset as "input,output" rows.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"input", "output"}); err != nil {
		return err
	}
	for i := range d.inputs {
		rec := []string{
			strconv.Itoa(d.inputs[i]),
			strconv.FormatFloat(d.outputs[i], 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV (or any two-column
// input,output CSV with a header row).
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	d := &Dataset{}
	for i, rec := range recs {
		if i == 0 && len(rec) >= 1 && rec[0] == "input" {
			continue // header
		}
		if len(rec) < 2 {
			return nil, fmt.Errorf("mi: row %d has %d columns, want 2", i, len(rec))
		}
		in, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("mi: row %d input: %w", i, err)
		}
		out, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("mi: row %d output: %w", i, err)
		}
		d.Add(in, out)
	}
	if d.N() == 0 {
		return nil, ErrEmptyDataset
	}
	return d, nil
}
