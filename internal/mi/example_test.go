package mi_test

import (
	"fmt"
	"math/rand"

	"timeprotection/internal/mi"
)

// ExampleEstimate measures a noiseless two-symbol channel: the sender's
// bit fully determines which latency cluster the receiver observes, so
// one bit flows per observation.
func ExampleEstimate() {
	d := &mi.Dataset{}
	for i := 0; i < 200; i++ {
		d.Add(0, 100) // symbol 0 -> fast probe
		d.Add(1, 350) // symbol 1 -> slow probe
	}
	fmt.Printf("M = %.1f bits\n", mi.Estimate(d))
	// Output:
	// M = 1.0 bits
}

// ExampleAnalyze shows the full §5.1 methodology: the estimate together
// with the shuffle test's zero-leakage bound decides whether a channel
// exists.
func ExampleAnalyze() {
	leaky := &mi.Dataset{}
	for i := 0; i < 150; i++ {
		leaky.Add(i%2, float64(100+250*(i%2)))
	}
	r := mi.Analyze(leaky, rand.New(rand.NewSource(1)))
	fmt.Printf("leak: %v\n", r.Leak())

	flat := &mi.Dataset{}
	for i := 0; i < 150; i++ {
		flat.Add(i%2, 100)
	}
	r = mi.Analyze(flat, rand.New(rand.NewSource(1)))
	fmt.Printf("leak: %v\n", r.Leak())
	// Output:
	// leak: true
	// leak: false
}

// ExampleCapacity computes the Blahut-Arimoto capacity of a binary
// symmetric channel with 11% crossover.
func ExampleCapacity() {
	m := mi.ChannelMatrix{
		Inputs: []int{0, 1},
		P: [][]float64{
			{0.89, 0.11},
			{0.11, 0.89},
		},
	}
	fmt.Printf("C = %.3f bits\n", mi.Capacity(m))
	// Output:
	// C = 0.500 bits
}
