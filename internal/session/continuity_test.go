package session

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"timeprotection/internal/store"
)

func openJournal(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

// restart simulates a SIGKILL + reboot: the registry is abandoned
// un-drained (sessions are NOT closed — a real kill never runs the
// drain path), the store is closed and reopened, and a fresh registry
// is built over the recovered journal.
func restart(t *testing.T, r *Registry, st *store.Store, dir string) (*Registry, *store.Store) {
	t.Helper()
	// Stop the old reaper goroutine without the drain semantics
	// mattering: the journal already holds every acknowledged step, and
	// shutdown deliberately does not tombstone.
	r.Close()
	if err := st.Close(); err != nil {
		t.Fatalf("store.Close: %v", err)
	}
	st2 := openJournal(t, dir)
	t.Cleanup(func() { st2.Close() })
	r2 := NewRegistry(Options{Journal: st2})
	t.Cleanup(r2.Close)
	return r2, st2
}

// TestRestoreMatchesOneShot is the tentpole's determinism proof: a
// journaled session killed and restored at EVERY step boundary — a
// fresh registry and reopened store before each step — still produces
// byte-identical samples and an identical MI verdict to the
// uninterrupted one-shot run. Replay is the codec: no machine state
// crosses the restart except the Spec and the step log.
func TestRestoreMatchesOneShot(t *testing.T) {
	sp := Spec{Channel: "l1d", Samples: 24, Seed: ptr(7)}
	want := oneShot(t, sp)

	dir := t.TempDir()
	st := openJournal(t, dir)
	r := NewRegistry(Options{Journal: st})

	s, err := r.Create(sp)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	id := s.ID

	sizes := []int{1, 3, 1, 7, 2, 5, 100}
	var got []Sample
	var verdict *Verdict
	for i := 0; ; i++ {
		res, err := s.Step(sizes[i%len(sizes)])
		if err != nil {
			t.Fatalf("Step %d: %v", i, err)
		}
		got = append(got, res.Samples...)
		if res.Done {
			verdict = res.Verdict
			break
		}
		// Kill the daemon at this boundary and restore before the next
		// step.
		r, st = restart(t, r, st, dir)
		restored, ok := r.Get(id)
		if !ok {
			t.Fatalf("restore %q after kill at step %d failed", id, i)
		}
		if restored.ID != id {
			t.Fatalf("restored ID %q, want %q", restored.ID, id)
		}
		if int(restored.collected.Load()) != len(got) {
			t.Fatalf("restored session holds %d samples, stepped %d before the kill",
				restored.collected.Load(), len(got))
		}
		s = restored
	}

	if len(got) != want.N() {
		t.Fatalf("collected %d samples across restarts, one-shot %d", len(got), want.N())
	}
	for i, sm := range want.Since(0) {
		if got[i].Index != i || got[i].Symbol != sm.Input || got[i].Value != sm.Output {
			t.Fatalf("sample %d = %+v, one-shot (symbol=%d value=%v)", i, got[i], sm.Input, sm.Output)
		}
	}
	ref := oneShotVerdict(t, sp)
	if verdict == nil || verdict.Summary != ref.Summary || verdict.MBits != ref.MBits ||
		verdict.M0Bits != ref.M0Bits || verdict.N != ref.N || verdict.Leak != ref.Leak {
		t.Errorf("verdict across restarts = %+v, one-shot %+v", verdict, ref)
	}

	// The registry attributes every restore without breaking the
	// balance: created == active + closed + reaped.
	stats := r.Stats()
	if stats.Restored != 1 || stats.Created != uint64(stats.Active)+stats.Closed+stats.Reaped {
		t.Errorf("counters after restore: %+v", stats)
	}
	if stats.JournalErrors != 0 {
		t.Errorf("journal errors: %+v", stats)
	}
}

// oneShotVerdict computes the reference verdict through a throwaway
// un-journaled session (same code path as the daemon's one-shot
// equivalence, already proven by TestSessionMatchesOneShot).
func oneShotVerdict(t *testing.T, sp Spec) *Verdict {
	t.Helper()
	r := newTestRegistry(t, Options{})
	s, err := r.Create(sp)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for {
		res, err := s.Step(1000)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if res.Done {
			return res.Verdict
		}
	}
}

// TestStepSeqExactlyOnce: a retried step with the same sequence number
// returns the original result without advancing the simulation, an
// older sequence is rejected with ErrStaleSeq, and the guarantee holds
// across a kill/restore because the sequence rides the journal.
func TestStepSeqExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	st := openJournal(t, dir)
	r := NewRegistry(Options{Journal: st})

	s, err := r.Create(Spec{Channel: "l1d", Samples: 24, Seed: ptr(7)})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	id := s.ID

	if _, err := s.StepSeq(3, 1); err != nil {
		t.Fatalf("StepSeq(3, 1): %v", err)
	}
	res2, err := s.StepSeq(5, 2)
	if err != nil {
		t.Fatalf("StepSeq(5, 2): %v", err)
	}

	// Retry of the last applied sequence: cached result, no advance.
	retry, err := s.StepSeq(5, 2)
	if err != nil {
		t.Fatalf("retry seq 2: %v", err)
	}
	if retry != res2 {
		t.Fatalf("retry returned a new result (%+v), want the cached one (%+v)", retry, res2)
	}
	if got := s.Status().Collected; got != res2.Total {
		t.Fatalf("retry advanced the session: collected %d, want %d", got, res2.Total)
	}

	// An older sequence is a conflict, not a replay.
	if _, err := s.StepSeq(3, 1); !errors.Is(err, ErrStaleSeq) {
		t.Fatalf("seq 1 after 2 = %v, want ErrStaleSeq", err)
	}

	// Kill and restore: the journal replays seqs 1 and 2, so the retry
	// contract survives the crash — same cached totals, same conflict.
	r2, _ := restart(t, r, st, dir)
	s2, ok := r2.Get(id)
	if !ok {
		t.Fatal("restore failed")
	}
	retry2, err := s2.StepSeq(5, 2)
	if err != nil {
		t.Fatalf("post-restore retry seq 2: %v", err)
	}
	if retry2.Total != res2.Total || retry2.Collected != res2.Collected {
		t.Fatalf("post-restore retry = %+v, want totals of %+v", retry2, res2)
	}
	if len(retry2.Samples) != len(res2.Samples) {
		t.Fatalf("post-restore retry returned %d samples, original %d", len(retry2.Samples), len(res2.Samples))
	}
	for i := range retry2.Samples {
		if retry2.Samples[i] != res2.Samples[i] {
			t.Fatalf("post-restore retry sample %d = %+v, original %+v", i, retry2.Samples[i], res2.Samples[i])
		}
	}
	if _, err := s2.StepSeq(1, 1); !errors.Is(err, ErrStaleSeq) {
		t.Fatalf("post-restore seq 1 = %v, want ErrStaleSeq", err)
	}
	// And the next fresh sequence advances exactly once.
	res3, err := s2.StepSeq(2, 3)
	if err != nil || res3.Total != res2.Total+res3.Collected {
		t.Fatalf("seq 3 after restore = %+v, %v", res3, err)
	}
}

// TestDeleteTombstonesAcrossRestart: a deleted session must stay dead —
// its journal doc becomes a tombstone, so a restart cannot resurrect
// it, and its ID is never re-minted into a collision.
func TestDeleteTombstonesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st := openJournal(t, dir)
	r := NewRegistry(Options{Journal: st})

	s, err := r.Create(Spec{Channel: "l1d", Samples: 24, Seed: ptr(7)})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := s.Step(3); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if !r.Delete(s.ID) {
		t.Fatal("Delete failed")
	}

	r2, _ := restart(t, r, st, dir)
	if _, ok := r2.Get(s.ID); ok {
		t.Fatalf("deleted session %q resurrected after restart", s.ID)
	}
	if r2.Delete(s.ID) {
		t.Error("deleting a tombstoned session reported success")
	}
}

// TestDeleteJournalOnlySession: DELETE of a session that was journaled
// by a previous run but never restored must succeed (the tombstone is
// the deletion) — the client's handle stays valid across the restart.
func TestDeleteJournalOnlySession(t *testing.T) {
	dir := t.TempDir()
	st := openJournal(t, dir)
	r := NewRegistry(Options{Journal: st})
	s, err := r.Create(Spec{Channel: "l1d", Samples: 24, Seed: ptr(7)})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	id := s.ID

	r2, _ := restart(t, r, st, dir)
	if !r2.Delete(id) {
		t.Fatalf("Delete(%q) of journal-only session failed", id)
	}
	if _, ok := r2.Get(id); ok {
		t.Fatal("deleted journal-only session still restorable")
	}
	if got := r2.Stats().Restored; got != 0 {
		t.Errorf("deletion restored the session first: restored=%d", got)
	}
}

// TestMintSkipsJournaledIDs: a restarted daemon must not hand a new
// session an ID whose journal doc is still restorable — that would
// overwrite the old session's journal.
func TestMintSkipsJournaledIDs(t *testing.T) {
	dir := t.TempDir()
	st := openJournal(t, dir)
	r := NewRegistry(Options{Journal: st})
	old, err := r.Create(Spec{Channel: "l1d", Samples: 24, Seed: ptr(7)})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	r2, _ := restart(t, r, st, dir)
	fresh, err := r2.Create(Spec{Channel: "l1d", Samples: 24, Seed: ptr(8)})
	if err != nil {
		t.Fatalf("Create after restart: %v", err)
	}
	if fresh.ID == old.ID {
		t.Fatalf("freshly minted ID %q collides with a journaled session", fresh.ID)
	}
	// The old session is still there, under its own ID, with its own
	// seed.
	back, ok := r2.Get(old.ID)
	if !ok {
		t.Fatalf("journaled session %q lost after minting around it", old.ID)
	}
	if *back.Spec().Seed != 7 {
		t.Errorf("restored spec seed = %d, want 7", *back.Spec().Seed)
	}
}

// TestConcurrentRestoreSingleflight: concurrent Gets of the same
// journaled ID collapse to ONE restore (one machine boot, restored
// counter of exactly 1) and all callers get the same session.
func TestConcurrentRestoreSingleflight(t *testing.T) {
	dir := t.TempDir()
	st := openJournal(t, dir)
	r := NewRegistry(Options{Journal: st})
	s, err := r.Create(Spec{Channel: "l1d", Samples: 24, Seed: ptr(7)})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := s.Step(10); err != nil {
		t.Fatalf("Step: %v", err)
	}
	id := s.ID

	r2, _ := restart(t, r, st, dir)
	const callers = 8
	got := make([]*Session, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i], _ = r2.Get(id)
		}()
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if got[i] == nil || got[i] != got[0] {
			t.Fatalf("caller %d got %p, caller 0 got %p", i, got[i], got[0])
		}
	}
	if stats := r2.Stats(); stats.Restored != 1 || stats.Created != 1 {
		t.Errorf("singleflight restore counters: %+v", stats)
	}
}

// TestCloseRacesStepSubscribeDelete drives Registry.Close against
// in-flight Step, Subscribe, Get-restore and Delete calls under the
// race detector: no deadlock, no panic, and every session ends closed.
func TestCloseRacesStepSubscribeDelete(t *testing.T) {
	dir := t.TempDir()
	st := openJournal(t, dir)
	t.Cleanup(func() { st.Close() })
	r := NewRegistry(Options{Journal: st})

	const n = 6
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		s, err := r.Create(Spec{Channel: "l1d", Samples: 200, Seed: ptr(int64(i))})
		if err != nil {
			t.Fatalf("Create %d: %v", i, err)
		}
		ids[i] = s.ID
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		id := ids[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for {
				s, ok := r.Get(id)
				if !ok {
					return
				}
				if _, err := s.Step(5); err != nil {
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			s, ok := r.Get(id)
			if !ok {
				return
			}
			sub, err := s.Subscribe()
			if err != nil {
				return
			}
			defer sub.Close()
			for {
				select {
				case <-sub.C:
				case <-sub.Done:
					return
				case <-time.After(2 * time.Second):
					t.Errorf("session %s: Done never closed after registry Close", id)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		r.Delete(ids[0])
	}()

	close(start)
	time.Sleep(10 * time.Millisecond) // let the steppers get going
	r.Close()
	wg.Wait()

	stats := r.Stats()
	if stats.Active != 0 {
		t.Errorf("sessions survived Close: %+v", stats)
	}
	if stats.Created != uint64(stats.Active)+stats.Closed+stats.Reaped {
		t.Errorf("counters unbalanced after racing Close: %+v", stats)
	}
	// The registry stays safely dead: no restore, no create.
	if _, ok := r.Get(ids[1]); ok {
		t.Error("Get restored a session on a closed registry")
	}
	if _, err := r.Create(Spec{Channel: "l1d"}); !errors.Is(err, ErrRegistryClosed) {
		t.Errorf("Create after Close = %v, want ErrRegistryClosed", err)
	}
}

// TestReapTombstones: an idle-reaped session must not come back after a
// restart — reaping tombstones like deletion does.
func TestReapTombstones(t *testing.T) {
	dir := t.TempDir()
	st := openJournal(t, dir)
	now := time.Now()
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	r := NewRegistry(Options{Journal: st, IdleTTL: time.Minute, ReapInterval: time.Hour, Clock: clock})

	s, err := r.Create(Spec{Channel: "l1d", Samples: 24, Seed: ptr(7)})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	r.ReapNow()
	if got := r.Stats().Reaped; got != 1 {
		t.Fatalf("reaped = %d, want 1", got)
	}

	r2, _ := restart(t, r, st, dir)
	if _, ok := r2.Get(s.ID); ok {
		t.Fatalf("reaped session %q resurrected after restart", s.ID)
	}
}

// TestIDPrefixForAddr pins the address-to-prefix mapping the clustered
// daemons mint with.
func TestIDPrefixForAddr(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:9101": "s-127-0-0-1-9101",
		"shard-a:80":     "s-shard-a-80",
		"[::1]:8080":     "s----1--8080",
	}
	for addr, want := range cases {
		if got := IDPrefixForAddr(addr); got != want {
			t.Errorf("IDPrefixForAddr(%q) = %q, want %q", addr, got, want)
		}
		r := newTestRegistry(t, Options{IDPrefix: IDPrefixForAddr(addr)})
		s, err := r.Create(Spec{Channel: "l1d", Samples: 10})
		if err != nil {
			t.Fatalf("Create with prefix %q: %v", want, err)
		}
		if wantID := fmt.Sprintf("%s-1", want); s.ID != wantID {
			t.Errorf("minted ID %q, want %q", s.ID, wantID)
		}
	}
}
