package session

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"timeprotection/internal/channel"
	"timeprotection/internal/hw"
	"timeprotection/internal/kernel"
	"timeprotection/internal/mi"
	"timeprotection/internal/trace"
)

// Trace modes: which events a session publishes to its subscribers.
const (
	// TraceOff attaches no sink: the machine forks through the normal
	// snapshot path and the stream carries only MI updates, lifecycle
	// events and heartbeats.
	TraceOff = "off"
	// TraceProtocol (the default) publishes the channel-protocol and
	// kernel events (symbols, sample boundaries, switches, flushes) —
	// the narrative of the attack without the per-access firehose.
	TraceProtocol = "protocol"
	// TraceAll publishes every microarchitectural event. Orders of
	// magnitude chattier; the bounded buffers make it safe, not cheap.
	TraceAll = "all"
)

// Session close reasons, carried by the stream's closed event.
const (
	CloseDeleted  = "deleted"  // DELETE /v1/sessions/{id}
	CloseIdle     = "idle"     // idle-TTL reaper
	CloseShutdown = "shutdown" // registry drain
)

// Spec is the POST /v1/sessions body: which attack to mount. Defaults
// follow the channel.Spec/PR-3 semantics — the conventional values
// live here in the declaration layer, seed 0 is a valid seed distinct
// from an absent one, and the normalized spec is echoed back to the
// client.
type Spec struct {
	// Channel is the attack: l1d|l1i|l2|tlb|btb|bhb|kernel|interrupt.
	Channel string `json:"channel"`
	// Scenario is raw|fullflush|protected (default raw).
	Scenario string `json:"scenario,omitempty"`
	// Platform is haswell|sabre (default haswell).
	Platform string `json:"platform,omitempty"`
	// Samples is the target sample count (default 200).
	Samples int `json:"samples,omitempty"`
	// Seed drives the sender's symbol sequence (absent = 42; 0 valid).
	Seed *int64 `json:"seed,omitempty"`
	// PadMicros pads domain switches (protected scenario).
	PadMicros float64 `json:"pad_micros,omitempty"`
	// Partition binds the interrupt channel's line to the trojan's
	// kernel image (Kernel_SetInt).
	Partition bool `json:"partition,omitempty"`
	// DisablePrefetcher models the §5.3.2 ablation.
	DisablePrefetcher bool `json:"disable_prefetcher,omitempty"`
	// Trace selects the stream's event feed: off|protocol|all
	// (default protocol).
	Trace string `json:"trace,omitempty"`
}

// intraResources maps the spec's channel names onto channel.Resource.
var intraResources = map[string]channel.Resource{
	"l1d": channel.L1D, "l1i": channel.L1I, "l2": channel.L2,
	"tlb": channel.TLB, "btb": channel.BTB, "bhb": channel.BHB,
}

// Channels lists every session-steppable channel name.
func Channels() []string {
	return []string{"l1d", "l1i", "l2", "tlb", "btb", "bhb", "kernel", "interrupt"}
}

// withDefaults validates the spec and fills the declaration-level
// defaults, returning the normalized form a session echoes back.
func (sp Spec) withDefaults() (Spec, error) {
	if sp.Channel == "" {
		return sp, fmt.Errorf("%w: missing channel (%v)", ErrBadSpec, Channels())
	}
	if _, ok := intraResources[sp.Channel]; !ok && sp.Channel != "kernel" && sp.Channel != "interrupt" {
		return sp, fmt.Errorf("%w: unknown channel %q (%v)", ErrBadSpec, sp.Channel, Channels())
	}
	switch sp.Scenario {
	case "":
		sp.Scenario = "raw"
	case "raw", "fullflush", "protected":
	default:
		return sp, fmt.Errorf("%w: unknown scenario %q (raw|fullflush|protected)", ErrBadSpec, sp.Scenario)
	}
	if sp.Platform == "" {
		sp.Platform = "haswell"
	}
	if _, ok := hw.PlatformByName(sp.Platform); !ok {
		return sp, fmt.Errorf("%w: unknown platform %q (haswell|sabre)", ErrBadSpec, sp.Platform)
	}
	if sp.Samples < 0 {
		return sp, fmt.Errorf("%w: negative samples %d", ErrBadSpec, sp.Samples)
	}
	if sp.Samples == 0 {
		sp.Samples = 200
	}
	if sp.Seed == nil {
		seed := int64(42)
		sp.Seed = &seed
	}
	if sp.PadMicros < 0 {
		return sp, fmt.Errorf("%w: negative pad_micros %v", ErrBadSpec, sp.PadMicros)
	}
	switch sp.Trace {
	case "":
		sp.Trace = TraceProtocol
	case TraceOff, TraceProtocol, TraceAll:
	default:
		return sp, fmt.Errorf("%w: unknown trace mode %q (off|protocol|all)", ErrBadSpec, sp.Trace)
	}
	return sp, nil
}

// scenario resolves the validated scenario name.
func (sp Spec) scenario() kernel.Scenario {
	switch sp.Scenario {
	case "fullflush":
		return kernel.ScenarioFullFlush
	case "protected":
		return kernel.ScenarioProtected
	default:
		return kernel.ScenarioRaw
	}
}

// channelSpec builds the channel.Spec the one-shot tpattack path would
// use for the same parameters — determinism depends on this mapping
// being exact.
func (sp Spec) channelSpec(sink *trace.Sink) channel.Spec {
	plat, _ := hw.PlatformByName(sp.Platform)
	return channel.Spec{
		Platform:          plat,
		Scenario:          sp.scenario(),
		Samples:           sp.Samples,
		Seed:              *sp.Seed,
		PadMicros:         sp.PadMicros,
		DisablePrefetcher: sp.DisablePrefetcher,
		Tracer:            sink,
		ForkWithEvents:    sink != nil,
	}
}

// Event is one streamed session event; the service layer serializes
// Data as the SSE payload under the Type event name.
type Event struct {
	Type string
	Data any
}

// TraceEvent is the JSON form of a trace.Event on the stream.
type TraceEvent struct {
	Time   uint64 `json:"time"`
	Core   uint8  `json:"core"`
	Domain int16  `json:"domain"`
	Kind   string `json:"kind"`
	Unit   string `json:"unit"`
	Addr   uint64 `json:"addr"`
	Arg    uint64 `json:"arg"`
}

// MIUpdate is the per-window live MI estimate on the stream.
type MIUpdate struct {
	N         int     `json:"n"`
	Bits      float64 `json:"bits"`
	Millibits float64 `json:"millibits"`
}

// Closed is the stream's final lifecycle event.
type Closed struct {
	Reason string `json:"reason"`
}

// Verdict is the completed session's MI measurement — the same numbers,
// and the same Summary string, as the one-shot tpattack report for the
// equivalent run.
type Verdict struct {
	MBits   float64 `json:"m_bits"`
	M0Bits  float64 `json:"m0_bits"`
	N       int     `json:"n"`
	Leak    bool    `json:"leak"`
	Summary string  `json:"summary"`
}

// Sample is one collected (symbol, measurement) pair with its global
// index in the session's dataset.
type Sample struct {
	Index  int     `json:"index"`
	Symbol int     `json:"symbol"`
	Value  float64 `json:"value"`
}

// StepResult is the POST .../step response payload.
type StepResult struct {
	Requested int      `json:"requested"`
	Collected int      `json:"collected"`
	Total     int      `json:"total"`
	Target    int      `json:"target"`
	Done      bool     `json:"done"`
	Samples   []Sample `json:"samples"`
	MIBits    float64  `json:"mi_bits"`
	Verdict   *Verdict `json:"verdict,omitempty"`
}

// Session is one live attack: a private machine, the prepared
// sender/receiver pair, and the subscriber fan-out. Simulation runs
// under mu (one step at a time); the publishing path is lock-free for
// emitters (an atomic subscriber-slice snapshot plus non-blocking
// sends), so even the TraceAll firehose costs the simulation two
// atomic loads per event when nobody subscribes.
type Session struct {
	ID  string
	seq uint64

	reg  *Registry
	spec Spec

	createdAt time.Time
	lastTouch atomic.Int64 // unix nanos; created or stepped

	mu         sync.Mutex // serializes stepping and the verdict computation
	x          *channel.Interactive
	stepLog    []StepRec   // every applied step, in order (the replay codec)
	lastSeq    uint64      // highest client sequence number applied
	lastResult *StepResult // the last sequenced step's result, for idempotent retries
	replaying  bool        // restore replay in progress: suppress journal writes

	closed    atomic.Bool
	collected atomic.Int64
	steps     atomic.Uint64
	verdict   atomic.Pointer[Verdict]

	pubMu     sync.Mutex   // subscriber-set mutations
	subs      atomic.Value // []*Subscriber snapshot read by publishers
	published atomic.Uint64
	dropped   atomic.Uint64
}

// newSession boots (snapshot-forks) the machine and prepares the
// attack; the registry assigns the ID at insertion.
func newSession(r *Registry, spec Spec) (*Session, error) {
	var sink *trace.Sink
	if spec.Trace != TraceOff {
		sink = trace.NewSink(r.opts.TraceRing)
	}
	cs := spec.channelSpec(sink)
	var x *channel.Interactive
	var err error
	switch spec.Channel {
	case "kernel":
		x, err = channel.PrepareKernelChannel(cs)
	case "interrupt":
		x, err = channel.PrepareInterruptChannel(cs, spec.Partition)
	default:
		x, err = channel.PrepareIntraCore(cs, intraResources[spec.Channel])
	}
	if err != nil {
		return nil, err
	}
	s := &Session{reg: r, spec: spec, createdAt: r.opts.Clock(), x: x}
	s.subs.Store([]*Subscriber{})
	s.lastTouch.Store(s.createdAt.UnixNano())
	if sink != nil {
		// Installed after Prepare so a cold boot (snapshots disabled)
		// never feeds boot events into the live stream; only stepped
		// simulation publishes.
		protocolOnly := spec.Trace == TraceProtocol
		sink.OnEvent = func(e trace.Event) {
			if protocolOnly && e.Unit != trace.UnitChannel && e.Unit != trace.UnitKernel {
				return
			}
			s.publish(Event{Type: "trace", Data: TraceEvent{
				Time: e.Time, Core: e.Core, Domain: e.Domain,
				Kind: e.Kind.String(), Unit: e.Unit.String(), Addr: e.Addr, Arg: e.Arg,
			}})
		}
	}
	return s, nil
}

// Spec returns the normalized spec the session was created from.
func (s *Session) Spec() Spec { return s.spec }

// Created returns the creation time.
func (s *Session) Created() time.Time { return s.createdAt }

// LastActive returns when the session was last created or stepped.
func (s *Session) LastActive() time.Time {
	return time.Unix(0, s.lastTouch.Load())
}

func (s *Session) touch() { s.lastTouch.Store(s.reg.opts.Clock().UnixNano()) }

// Closed reports whether the session has been deleted, reaped or shut
// down.
func (s *Session) Closed() bool { return s.closed.Load() }

// MaxStepRounds bounds the rounds one step request may ask for — large
// enough for any real attack increment, small enough that a garbage or
// hostile value cannot pin the simulation (and, journaled, would not
// poison every future replay of the session).
const MaxStepRounds = 1 << 20

// Step advances the attack by up to n samples (minimum 1), returning
// the probe latencies it collected and the running MI estimate. On the
// step that completes the target it computes, caches and publishes the
// final verdict — the same mi.Analyze(ds, rand(seed)) the one-shot
// tpattack report path runs.
func (s *Session) Step(n int) (*StepResult, error) { return s.StepSeq(n, 0) }

// StepSeq is Step with a client-supplied sequence number making retries
// idempotent: sequence numbers must strictly increase per session, a
// retry of the last applied sequence returns its cached result without
// advancing the simulation, and an older sequence fails with
// ErrStaleSeq. Sequence 0 opts out (plain Step). The guarantee holds
// across crashes and failovers because the sequence rides the journal:
// whoever replays the log knows exactly which steps already happened.
func (s *Session) StepSeq(n int, seq uint64) (*StepResult, error) {
	if n < 1 {
		n = 1
	}
	if s.closed.Load() {
		return nil, ErrClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if seq != 0 {
		if seq == s.lastSeq && s.lastResult != nil {
			s.touch()
			return s.lastResult, nil
		}
		if seq <= s.lastSeq {
			return nil, fmt.Errorf("%w: seq %d already applied (last %d)", ErrStaleSeq, seq, s.lastSeq)
		}
	}
	s.touch()
	ds := s.x.Dataset()
	before := ds.N()
	samples, err := s.x.StepSamples(n, func() bool { return s.closed.Load() })
	if err != nil {
		return nil, err
	}
	if s.closed.Load() {
		// Deleted or reaped mid-step: the stop hook abandoned the step
		// at a chunk boundary and the session is gone.
		return nil, ErrClosed
	}
	s.touch()
	total := ds.N()
	s.collected.Store(int64(total))
	s.steps.Add(1)
	s.reg.steps.Add(1)
	s.reg.samples.Add(uint64(len(samples)))

	miBits := mi.Estimate(ds)
	if w := s.reg.opts.MIWindow; w > 0 && len(samples) > 0 && (before/w != total/w || s.x.Done()) {
		s.publish(Event{Type: "mi", Data: MIUpdate{N: total, Bits: miBits, Millibits: mi.Millibits(miBits)}})
	}

	res := &StepResult{
		Requested: n, Collected: len(samples), Total: total,
		Target: s.x.Target(), Done: s.x.Done(), MIBits: miBits,
		Samples: make([]Sample, len(samples)),
	}
	for i, sm := range samples {
		res.Samples[i] = Sample{Index: before + i, Symbol: sm.Input, Value: sm.Output}
	}
	if s.x.Done() && s.verdict.Load() == nil {
		r := mi.Analyze(ds, rand.New(rand.NewSource(*s.spec.Seed)))
		v := &Verdict{MBits: r.M, M0Bits: r.M0, N: r.N, Leak: r.Leak(), Summary: r.String()}
		s.verdict.Store(v)
		s.publish(Event{Type: "done", Data: v})
	}
	res.Verdict = s.verdict.Load()
	s.stepLog = append(s.stepLog, StepRec{Seq: seq, Rounds: n})
	if seq != 0 {
		s.lastSeq = seq
		s.lastResult = res
	}
	s.journalLocked()
	return res, nil
}

// Status is the GET /v1/sessions/{id} document.
type Status struct {
	ID              string    `json:"id"`
	Spec            Spec      `json:"spec"`
	Created         time.Time `json:"created"`
	LastActive      time.Time `json:"last_active"`
	Collected       int       `json:"collected"`
	Target          int       `json:"target"`
	Done            bool      `json:"done"`
	Steps           uint64    `json:"steps"`
	Subscribers     int       `json:"subscribers"`
	EventsPublished uint64    `json:"events_published"`
	EventsDropped   uint64    `json:"events_dropped"`
	Verdict         *Verdict  `json:"verdict,omitempty"`
}

// Status snapshots the session without touching the simulation lock —
// a long-running step never blocks a status poll.
func (s *Session) Status() Status {
	subs, _ := s.subs.Load().([]*Subscriber)
	v := s.verdict.Load()
	return Status{
		ID:              s.ID,
		Spec:            s.spec,
		Created:         s.createdAt,
		LastActive:      s.LastActive(),
		Collected:       int(s.collected.Load()),
		Target:          s.x.Target(),
		Done:            v != nil,
		Steps:           s.steps.Load(),
		Subscribers:     len(subs),
		EventsPublished: s.published.Load(),
		EventsDropped:   s.dropped.Load(),
		Verdict:         v,
	}
}

// Subscriber is one live event consumer. Events arrive on C (bounded,
// never closed); Done closes when the session ends. A consumer that
// stops reading loses events — Dropped counts them — but never slows
// or blocks the simulation.
type Subscriber struct {
	C    <-chan Event
	Done <-chan struct{}

	s       *Session
	ch      chan Event
	done    chan struct{}
	once    sync.Once
	dropped atomic.Uint64
}

// Dropped returns how many events this subscriber's full buffer lost.
func (sub *Subscriber) Dropped() uint64 { return sub.dropped.Load() }

// Subscribe attaches a bounded live event feed to the session.
func (s *Session) Subscribe() (*Subscriber, error) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	subs, _ := s.subs.Load().([]*Subscriber)
	if len(subs) >= s.reg.opts.MaxSubscribers {
		return nil, ErrSubscriberLimit
	}
	sub := &Subscriber{
		s:    s,
		ch:   make(chan Event, s.reg.opts.EventBuffer),
		done: make(chan struct{}),
	}
	sub.C, sub.Done = sub.ch, sub.done
	next := make([]*Subscriber, len(subs), len(subs)+1)
	copy(next, subs)
	s.subs.Store(append(next, sub))
	s.reg.subsGauge.Add(1)
	return sub, nil
}

// Close detaches the subscriber (the SSE handler's defer).
func (sub *Subscriber) Close() {
	s := sub.s
	s.pubMu.Lock()
	subs, _ := s.subs.Load().([]*Subscriber)
	next := make([]*Subscriber, 0, len(subs))
	for _, o := range subs {
		if o != sub {
			next = append(next, o)
		}
	}
	s.subs.Store(next)
	s.pubMu.Unlock()
	sub.finish()
}

// finish closes Done exactly once and settles the gauge.
func (sub *Subscriber) finish() {
	sub.once.Do(func() {
		close(sub.done)
		sub.s.reg.subsGauge.Add(-1)
	})
}

// publish fans an event out to every subscriber without blocking: a
// full buffer drops the event for that subscriber and counts the drop.
// Runs on the simulating goroutine (trace hook, step results) and on
// the closing goroutine; both only read the atomic subscriber snapshot.
func (s *Session) publish(ev Event) {
	subs, _ := s.subs.Load().([]*Subscriber)
	if len(subs) == 0 {
		return
	}
	s.published.Add(1)
	s.reg.published.Add(1)
	for _, sub := range subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
			s.dropped.Add(1)
			s.reg.dropped.Add(1)
		}
	}
}

// close ends the session: the closed flag halts any in-flight step at
// its next chunk boundary, subscribers get a final closed event, and
// their Done channels close. Returns false if already closed.
func (s *Session) close(reason string) bool {
	if !s.closed.CompareAndSwap(false, true) {
		return false
	}
	s.publish(Event{Type: "closed", Data: Closed{Reason: reason}})
	s.pubMu.Lock()
	subs, _ := s.subs.Load().([]*Subscriber)
	s.subs.Store([]*Subscriber{})
	s.pubMu.Unlock()
	for _, sub := range subs {
		sub.finish()
	}
	return true
}
