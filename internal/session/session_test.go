package session

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"timeprotection/internal/channel"
	"timeprotection/internal/hw"
	"timeprotection/internal/mi"
)

func newTestRegistry(t *testing.T, opts Options) *Registry {
	t.Helper()
	r := NewRegistry(opts)
	t.Cleanup(r.Close)
	return r
}

func ptr(v int64) *int64 { return &v }

// oneShot runs the classic single-call channel path for a spec — the
// reference the interactive path must reproduce exactly.
func oneShot(t *testing.T, sp Spec) *mi.Dataset {
	t.Helper()
	sp, err := sp.withDefaults()
	if err != nil {
		t.Fatalf("withDefaults: %v", err)
	}
	cs := sp.channelSpec(nil)
	var ds *mi.Dataset
	switch sp.Channel {
	case "kernel":
		ds, err = channel.RunKernelChannel(cs)
	case "interrupt":
		ds, err = channel.RunInterruptChannel(cs, sp.Partition)
	default:
		ds, err = channel.RunIntraCore(cs, intraResources[sp.Channel])
	}
	if err != nil {
		t.Fatalf("one-shot %s: %v", sp.Channel, err)
	}
	return ds
}

// TestSessionMatchesOneShot is the determinism anchor: a session
// stepped to completion in deliberately uneven increments produces
// byte-identical samples — and an identical MI verdict — to the
// one-shot channel run for the same spec and seed, on every supported
// channel.
func TestSessionMatchesOneShot(t *testing.T) {
	specs := []Spec{
		{Channel: "l1d", Samples: 24, Seed: ptr(7)},
		{Channel: "l1i", Samples: 24, Seed: ptr(7)},
		{Channel: "l2", Samples: 24, Seed: ptr(7)},
		{Channel: "tlb", Samples: 24, Seed: ptr(7)},
		{Channel: "btb", Samples: 24, Seed: ptr(7)},
		{Channel: "bhb", Samples: 24, Seed: ptr(7)},
		{Channel: "kernel", Samples: 24, Seed: ptr(7)},
		{Channel: "interrupt", Samples: 24, Seed: ptr(7)},
		{Channel: "interrupt", Samples: 24, Seed: ptr(7), Partition: true},
		{Channel: "l1d", Samples: 20, Seed: ptr(0), Platform: "sabre", Scenario: "fullflush"},
		{Channel: "kernel", Samples: 20, Seed: ptr(3), Platform: "sabre", Scenario: "protected", PadMicros: 20},
	}
	for _, sp := range specs {
		sp := sp
		name := sp.Channel + "/" + sp.Platform + "/" + sp.Scenario
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			want := oneShot(t, sp)

			r := newTestRegistry(t, Options{})
			s, err := r.Create(sp)
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			// Uneven, replay-hostile step sizes: if stepping leaked any
			// state across chunk boundaries, some size here would expose
			// it.
			sizes := []int{1, 3, 1, 7, 2, 5, 100}
			var got []Sample
			var verdict *Verdict
			for i := 0; ; i++ {
				res, err := s.Step(sizes[i%len(sizes)])
				if err != nil {
					t.Fatalf("Step: %v", err)
				}
				got = append(got, res.Samples...)
				if res.Done {
					verdict = res.Verdict
					break
				}
			}

			if got := len(got); got != want.N() {
				t.Fatalf("collected %d samples, one-shot %d", got, want.N())
			}
			for i, sm := range want.Since(0) {
				if got[i].Index != i || got[i].Symbol != sm.Input || got[i].Value != sm.Output {
					t.Fatalf("sample %d = %+v, one-shot (symbol=%d value=%v)",
						i, got[i], sm.Input, sm.Output)
				}
			}
			ref := mi.Analyze(want, rand.New(rand.NewSource(*verdictSeed(sp))))
			if verdict == nil {
				t.Fatal("no verdict on the completing step")
			}
			if verdict.Summary != ref.String() {
				t.Errorf("verdict %q, one-shot %q", verdict.Summary, ref.String())
			}
			if math.Abs(verdict.MBits-ref.M) > 1e-9 || math.Abs(verdict.M0Bits-ref.M0) > 1e-9 {
				t.Errorf("MI m=%v m0=%v, one-shot m=%v m0=%v",
					verdict.MBits, verdict.M0Bits, ref.M, ref.M0)
			}
			if verdict.N != ref.N || verdict.Leak != ref.Leak() {
				t.Errorf("verdict n=%d leak=%v, one-shot n=%d leak=%v",
					verdict.N, verdict.Leak, ref.N, ref.Leak())
			}
			// Stepping a finished session stays done and collects nothing.
			res, err := s.Step(5)
			if err != nil {
				t.Fatalf("post-done Step: %v", err)
			}
			if !res.Done || res.Collected != 0 || res.Verdict == nil {
				t.Errorf("post-done step = %+v, want done, empty", res)
			}
		})
	}
}

func verdictSeed(sp Spec) *int64 {
	if sp.Seed != nil {
		return sp.Seed
	}
	return ptr(42)
}

// TestSpecValidation: every malformed spec is an ErrBadSpec before any
// machine boots.
func TestSpecValidation(t *testing.T) {
	r := newTestRegistry(t, Options{})
	bad := []Spec{
		{},              // missing channel
		{Channel: "l3"}, // unknown channel
		{Channel: "l1d", Scenario: "off"},
		{Channel: "l1d", Platform: "riscv"},
		{Channel: "l1d", Samples: -1},
		{Channel: "l1d", PadMicros: -2},
		{Channel: "l1d", Trace: "loud"},
	}
	for _, sp := range bad {
		if _, err := r.Create(sp); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Create(%+v) err = %v, want ErrBadSpec", sp, err)
		}
	}
	if got := r.Stats().Created; got != 0 {
		t.Errorf("created = %d after only bad specs", got)
	}

	// Defaults echo back normalized.
	s, err := r.Create(Spec{Channel: "l1d", Samples: 8})
	if err != nil {
		t.Fatal(err)
	}
	sp := s.Spec()
	if sp.Scenario != "raw" || sp.Platform != "haswell" || sp.Trace != TraceProtocol ||
		sp.Seed == nil || *sp.Seed != 42 {
		t.Errorf("normalized spec = %+v, want raw/haswell/protocol/seed 42", sp)
	}
}

// TestMaxSessionsCap: the registry rejects creation at the cap with
// ErrLimit, counts the rejection, and admits again after a delete.
func TestMaxSessionsCap(t *testing.T) {
	r := newTestRegistry(t, Options{MaxSessions: 1})
	s1, err := r.Create(Spec{Channel: "l1d", Samples: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create(Spec{Channel: "l1d", Samples: 8}); !errors.Is(err, ErrLimit) {
		t.Fatalf("second create err = %v, want ErrLimit", err)
	}
	if st := r.Stats(); st.Rejected != 1 || st.Active != 1 {
		t.Errorf("stats = %+v, want rejected=1 active=1", st)
	}
	if !r.Delete(s1.ID) {
		t.Fatal("delete failed")
	}
	if _, err := r.Create(Spec{Channel: "l1d", Samples: 8}); err != nil {
		t.Fatalf("create after delete: %v", err)
	}
}

// TestStepAfterDelete: a deleted session is gone from the registry and
// refuses further steps with ErrClosed.
func TestStepAfterDelete(t *testing.T) {
	r := newTestRegistry(t, Options{})
	s, err := r.Create(Spec{Channel: "l1d", Samples: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(2); err != nil {
		t.Fatal(err)
	}
	if !r.Delete(s.ID) {
		t.Fatal("delete failed")
	}
	if r.Delete(s.ID) {
		t.Error("second delete of the same ID succeeded")
	}
	if _, ok := r.Get(s.ID); ok {
		t.Error("deleted session still resolvable")
	}
	if _, err := s.Step(1); !errors.Is(err, ErrClosed) {
		t.Errorf("step after delete err = %v, want ErrClosed", err)
	}
	if st := r.Stats(); st.Closed != 1 || st.Active != 0 {
		t.Errorf("stats = %+v, want closed=1 active=0", st)
	}
}

// TestSlowConsumerDropsNotBlocks: a subscriber that never reads loses
// events — counted at the subscriber, session and registry — while the
// simulation steps to completion unimpeded. TraceAll + a tiny buffer
// makes the overflow certain; the test deadlocks (and times out) if
// publishing could ever block.
func TestSlowConsumerDropsNotBlocks(t *testing.T) {
	r := newTestRegistry(t, Options{EventBuffer: 4, MIWindow: 5})
	s, err := r.Create(Spec{Channel: "l1d", Samples: 16, Trace: TraceAll})
	if err != nil {
		t.Fatal(err)
	}
	stalled, err := s.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()

	// A live reader drains concurrently, proving drops are per
	// subscriber, not global.
	reader, err := s.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	var read int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-reader.C:
				read++
			case <-reader.Done:
				for {
					select {
					case <-reader.C:
						read++
					default:
						return
					}
				}
			}
		}
	}()

	for {
		res, err := s.Step(4)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if res.Done {
			break
		}
	}
	if got := stalled.Dropped(); got == 0 {
		t.Error("stalled subscriber dropped nothing; buffer should have overflowed")
	}
	st := s.Status()
	if st.EventsDropped == 0 || st.EventsPublished == 0 {
		t.Errorf("status = %+v, want published and dropped > 0", st)
	}
	rs := r.Stats()
	if rs.EventsDropped == 0 || rs.EventsPublished == 0 {
		t.Errorf("registry stats = %+v, want published and dropped > 0", rs)
	}
	r.Delete(s.ID)
	wg.Wait()
	if read == 0 {
		t.Error("live reader saw no events")
	}
}

// TestIdleReapMidStream: a session idle past the TTL is reaped even
// while a stream is attached — the subscriber gets a closed event with
// reason "idle" and its Done channel closes; stepping afterwards is
// ErrClosed. Time is injected, so the test is deterministic.
func TestIdleReapMidStream(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	r := newTestRegistry(t, Options{IdleTTL: time.Minute, ReapInterval: time.Hour, Clock: clock})
	s, err := r.Create(Spec{Channel: "l1d", Samples: 8})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := s.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Still fresh: nothing reaped.
	r.ReapNow()
	if _, ok := r.Get(s.ID); !ok {
		t.Fatal("fresh session reaped")
	}

	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	r.ReapNow()

	if _, ok := r.Get(s.ID); ok {
		t.Error("idle session still live after reap")
	}
	select {
	case <-sub.Done:
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber Done not closed by reap")
	}
	var sawClosed bool
	for drained := false; !drained; {
		select {
		case ev := <-sub.C:
			if ev.Type == "closed" {
				if c, ok := ev.Data.(Closed); !ok || c.Reason != CloseIdle {
					t.Errorf("closed event = %+v, want reason %q", ev.Data, CloseIdle)
				}
				sawClosed = true
			}
		default:
			drained = true
		}
	}
	if !sawClosed {
		t.Error("no closed event on the stream after reap")
	}
	if _, err := s.Step(1); !errors.Is(err, ErrClosed) {
		t.Errorf("step after reap err = %v, want ErrClosed", err)
	}
	if st := r.Stats(); st.Reaped != 1 || st.Active != 0 || st.Subscribers != 0 {
		t.Errorf("stats = %+v, want reaped=1 active=0 subscribers=0", st)
	}
}

// TestSubscriberLimit: per-session streams are capped; closing one
// frees the slot.
func TestSubscriberLimit(t *testing.T) {
	r := newTestRegistry(t, Options{MaxSubscribers: 1})
	s, err := r.Create(Spec{Channel: "l1d", Samples: 8})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := s.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Subscribe(); !errors.Is(err, ErrSubscriberLimit) {
		t.Fatalf("second subscribe err = %v, want ErrSubscriberLimit", err)
	}
	sub.Close()
	sub2, err := s.Subscribe()
	if err != nil {
		t.Fatalf("subscribe after close: %v", err)
	}
	sub2.Close()
}

// TestLifecycleCountersBalance: Created == Active + Closed + Reaped
// across a mix of creations, deletions, reaps and a registry shutdown.
func TestLifecycleCountersBalance(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(0, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	r := NewRegistry(Options{IdleTTL: time.Minute, ReapInterval: time.Hour, Clock: clock})
	mk := func() *Session {
		s, err := r.Create(Spec{Channel: "l1d", Samples: 8})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1, _ := mk(), mk()
	r.Delete(s1.ID)
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	r.ReapNow() // reaps the survivor of the first pair
	s3 := mk()
	_ = s3
	check := func() {
		st := r.Stats()
		if st.Created != uint64(st.Active)+st.Closed+st.Reaped {
			t.Errorf("unbalanced stats: %+v", st)
		}
	}
	check()
	r.Close() // shuts the remaining session; List must be empty after
	check()
	if st := r.Stats(); st.Active != 0 || st.Created != 3 || st.Reaped != 1 || st.Closed != 2 {
		t.Errorf("final stats = %+v, want created=3 reaped=1 closed=2 active=0", st)
	}
	if _, err := r.Create(Spec{Channel: "l1d", Samples: 8}); !errors.Is(err, ErrRegistryClosed) {
		t.Errorf("create after Close err = %v, want ErrRegistryClosed", err)
	}
}

// TestListOrder: List returns sessions in creation order with stable
// IDs.
func TestListOrder(t *testing.T) {
	r := newTestRegistry(t, Options{})
	var ids []string
	for i := 0; i < 3; i++ {
		s, err := r.Create(Spec{Channel: "l1d", Samples: 8})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	list := r.List()
	if len(list) != 3 {
		t.Fatalf("list has %d sessions, want 3", len(list))
	}
	for i, s := range list {
		if s.ID != ids[i] {
			t.Errorf("list[%d] = %s, want %s (creation order)", i, s.ID, ids[i])
		}
	}
}

// TestConcurrentStepStreamStatus: stepping, streaming, status polls and
// a mid-flight delete race without locking up — run under -race this
// is the session layer's concurrency proof.
func TestConcurrentStepStreamStatus(t *testing.T) {
	r := newTestRegistry(t, Options{EventBuffer: 8, MIWindow: 2})
	s, err := r.Create(Spec{Channel: "kernel", Samples: 40, Trace: TraceAll})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := s.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // stepper
		defer wg.Done()
		for {
			res, err := s.Step(3)
			if err != nil || res.Done {
				return
			}
		}
	}()
	go func() { // streamer
		defer wg.Done()
		for {
			select {
			case <-sub.C:
			case <-sub.Done:
				return
			}
		}
	}()
	go func() { // status poller + deleter
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = s.Status()
		}
		r.Delete(s.ID)
	}()
	wg.Wait()
	if !s.Closed() {
		t.Error("session not closed after delete")
	}
}

// TestHaswellPlatformExists guards the test fixtures' assumption.
func TestHaswellPlatformExists(t *testing.T) {
	if _, ok := hw.PlatformByName("haswell"); !ok {
		t.Fatal("haswell platform missing")
	}
}
