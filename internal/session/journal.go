package session

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Journal is the narrow durable-store surface the registry journals
// sessions through; *store.Store satisfies it. Session docs live under
// "sess-*" keys beside the artefact bodies and ride the store's
// crash-safety discipline (atomic replace, fsynced journal, recovery
// rollback).
type Journal interface {
	Get(key string) ([]byte, bool)
	Update(key string, body []byte) error
}

// Key returns the durable-store key a session journals under.
func Key(id string) string { return "sess-" + id }

// IDPrefixForAddr derives a cluster-unique session ID prefix from a
// shard's self address, so IDs minted by different shards never
// collide: "127.0.0.1:9101" -> "s-127-0-0-1-9101". Single-node
// deployments keep the plain "s" prefix.
func IDPrefixForAddr(addr string) string {
	b := []byte("s-" + addr)
	for i := 2; i < len(b); i++ {
		c := b[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			b[i] = '-'
		}
	}
	return string(b)
}

// validID bounds session IDs to what the store can key and what the
// forwarded-create header may carry.
func validID(id string) error {
	if id == "" || len(id) > 100 {
		return fmt.Errorf("%w: invalid session id %q", ErrBadSpec, id)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case (c == '.' || c == '_' || c == '-') && i > 0:
		default:
			return fmt.Errorf("%w: invalid session id %q", ErrBadSpec, id)
		}
	}
	return nil
}

// StepRec is one journaled step: the (clamped) rounds requested and the
// client sequence number that requested them (0 = unsequenced). The
// step log is the whole session state — simulation is deterministic, so
// replaying the same rounds against a machine forked from the same Spec
// reconstructs the session byte-for-byte. No closure serialization:
// replay *is* the codec.
type StepRec struct {
	Seq    uint64 `json:"seq,omitempty"`
	Rounds int    `json:"rounds"`
}

// journalDoc is the JSON body stored under Key(id): everything needed
// to rebuild the session (Spec + step log), or a tombstone (Closed set)
// marking a deleted/reaped session so it can never be resurrected.
type journalDoc struct {
	ID     string    `json:"id"`
	Spec   Spec      `json:"spec"`
	Steps  []StepRec `json:"steps,omitempty"`
	Closed string    `json:"closed,omitempty"`
}

// journalLocked persists the session's current doc (caller holds s.mu).
// The write is synchronous — a step is only acknowledged once its
// journal record is durable, so an acknowledged step survives a crash —
// and then replicated to ring successors when clustered. Journal
// failures degrade (counted, logged by the store) rather than failing
// the step: the in-memory session stays correct, and a crash loses at
// most the unjournalled tail, exactly like a crash before the step.
func (s *Session) journalLocked() {
	if s.replaying {
		return
	}
	j := s.reg.opts.Journal
	if j == nil {
		return
	}
	b, err := json.Marshal(journalDoc{ID: s.ID, Spec: s.spec, Steps: s.stepLog})
	if err != nil {
		s.reg.journalErrors.Add(1)
		return
	}
	if err := j.Update(Key(s.ID), b); err != nil {
		s.reg.journalErrors.Add(1)
		return
	}
	if rep := s.reg.opts.Replicate; rep != nil {
		rep(Key(s.ID), b)
	}
}

// tombstone overwrites a session's journal doc with a closed marker:
// deleted and reaped sessions must stay dead across restarts and
// failovers. Shutdown is deliberately not tombstoned — a drained
// daemon's sessions are exactly the ones restore exists for.
func (r *Registry) tombstone(id, reason string) {
	j := r.opts.Journal
	if j == nil {
		return
	}
	b, err := json.Marshal(journalDoc{ID: id, Closed: reason})
	if err != nil {
		return
	}
	if err := j.Update(Key(id), b); err != nil {
		r.journalErrors.Add(1)
		return
	}
	if rep := r.opts.Replicate; rep != nil {
		rep(Key(id), b)
	}
}

// journalLive reports whether the journal holds a restorable (not
// tombstoned) doc for this ID. Used to keep freshly minted IDs from
// colliding with journaled sessions of a previous run, and to let
// Delete tombstone a session that was never restored.
func (r *Registry) journalLive(id string) bool {
	j := r.opts.Journal
	if j == nil {
		return false
	}
	body, ok := j.Get(Key(id))
	if !ok {
		return false
	}
	var doc journalDoc
	return json.Unmarshal(body, &doc) == nil && doc.Closed == ""
}

// restore lazily re-creates a journaled session on first access after a
// restart or failover: fork a fresh machine from the journaled Spec,
// replay the step log in order, and the deterministic simulation lands
// on byte-identical state. Concurrent restores of the same ID collapse
// to one (the rest wait and adopt the result); distinct IDs restore in
// parallel.
func (r *Registry) restore(id string) (*Session, bool) {
	if r.opts.Journal == nil || validID(id) != nil {
		return nil, false
	}
	for {
		r.mu.Lock()
		if s, ok := r.sessions[id]; ok {
			r.mu.Unlock()
			return s, true
		}
		if r.shut {
			r.mu.Unlock()
			return nil, false
		}
		if ch, inflight := r.restoring[id]; inflight {
			r.mu.Unlock()
			<-ch
			continue
		}
		ch := make(chan struct{})
		r.restoring[id] = ch
		r.mu.Unlock()

		s, ok := r.doRestore(id)

		r.mu.Lock()
		delete(r.restoring, id)
		r.mu.Unlock()
		close(ch)
		return s, ok
	}
}

func (r *Registry) doRestore(id string) (*Session, bool) {
	body, ok := r.opts.Journal.Get(Key(id))
	if !ok {
		return nil, false
	}
	var doc journalDoc
	if err := json.Unmarshal(body, &doc); err != nil || doc.ID != id || doc.Closed != "" {
		return nil, false
	}
	spec, err := doc.Spec.withDefaults()
	if err != nil {
		return nil, false
	}
	if err := r.admit(); err != nil {
		return nil, false
	}
	s, err := newSession(r, spec)
	if err != nil {
		return nil, false
	}
	s.replaying = true
	for _, rec := range doc.Steps {
		if _, err := s.StepSeq(rec.Rounds, rec.Seq); err != nil && !errors.Is(err, ErrStaleSeq) {
			return nil, false
		}
	}
	s.mu.Lock()
	s.replaying = false
	s.mu.Unlock()
	if err := r.insert(s, id); err != nil {
		return nil, false
	}
	r.created.Add(1)
	r.restored.Add(1)
	return s, true
}
