// Package session is the server side of the interactive attack API: a
// registry of live attack sessions, each owning a booted
// (snapshot-forked) machine, a covert-channel sender/receiver pair
// prepared by internal/channel, and a bounded live event feed tapped
// off a per-session trace.Sink. Sessions are created from a Spec
// (channel/scenario/platform/seed, with the same defaults semantics as
// channel.Spec and the batch API), advanced step by step under caller
// control, and observed live over subscriber channels that the service
// layer turns into SSE streams.
//
// Determinism is the correctness anchor: a session stepped to
// completion — in any step increments — produces byte-identical
// samples and an identical MI verdict to the equivalent one-shot
// tpattack/channel run for the same spec and seed, because
// channel.Interactive replays exactly the one-shot loop's simulation
// chunks and the verdict is computed by the same mi.Analyze call with
// the same seed.
//
// Resource bounds are part of the contract: the registry caps live
// sessions (MaxSessions), reaps sessions idle past IdleTTL (a session
// is active when created or stepped; an open stream alone does not
// keep it alive), caps subscribers per session, and feeds each
// subscriber through a bounded buffer with drop accounting — a stalled
// SSE consumer loses events, never blocks the simulation.
package session

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Errors the service layer maps onto v1 error codes.
var (
	// ErrBadSpec wraps every spec-validation failure (bad_request).
	ErrBadSpec = errors.New("session: bad spec")
	// ErrLimit rejects creation at the MaxSessions cap (session_limit).
	ErrLimit = errors.New("session: at max-sessions capacity")
	// ErrClosed rejects operations on a deleted or reaped session
	// (session_closed).
	ErrClosed = errors.New("session: closed")
	// ErrSubscriberLimit rejects streams beyond the per-session cap
	// (subscriber_limit).
	ErrSubscriberLimit = errors.New("session: subscriber limit reached")
	// ErrRegistryClosed rejects creation during shutdown (unavailable).
	ErrRegistryClosed = errors.New("session: registry closed")
	// ErrStaleSeq rejects a step whose sequence number was already
	// superseded (seq_conflict) — see Session.StepSeq.
	ErrStaleSeq = errors.New("session: stale step sequence")
)

// Options configures a Registry. The zero value selects serving
// defaults.
type Options struct {
	// MaxSessions caps concurrently live sessions (default 64).
	MaxSessions int
	// IdleTTL is how long a session survives without being created or
	// stepped before the reaper closes it (default 5m). Subscribing to
	// the stream does not count as activity — an abandoned session with
	// a dangling stream still dies, which is what bounds machine count.
	IdleTTL time.Duration
	// ReapInterval is the reaper sweep period (default IdleTTL/4,
	// clamped to [50ms, 30s]).
	ReapInterval time.Duration
	// EventBuffer is each subscriber's buffered-channel capacity
	// (default 256). A full buffer drops the event for that subscriber
	// and counts it — publishing never blocks.
	EventBuffer int
	// MaxSubscribers caps stream subscribers per session (default 32).
	MaxSubscribers int
	// MIWindow emits a live MI update on the stream every MIWindow
	// collected samples (default 25; 0 disables the updates).
	MIWindow int
	// TraceRing is the per-session trace.Sink ring capacity backing
	// the live feed (default 4096).
	TraceRing int
	// Clock is the time source (default time.Now; tests inject).
	Clock func() time.Time

	// Journal, when non-nil, makes sessions durable: each session's
	// Spec and step log are journalled through it (synchronously, per
	// step) and restored lazily on first access after a restart —
	// deterministic replay of the step log reconstructs the session
	// byte-for-byte. nil = sessions die with the process (the
	// pre-journal behaviour).
	Journal Journal
	// Replicate, when non-nil, pushes every journal write (and
	// tombstone) to the cluster's ring successors, so a session
	// survives not just restarts but the permanent death of its owner.
	// Called synchronously after the local journal write.
	Replicate func(key string, body []byte)
	// IDPrefix namespaces minted session IDs ("<prefix>-<n>", default
	// "s"). Clustered daemons set a per-shard prefix
	// (IDPrefixForAddr) so IDs are unique across the ring.
	IDPrefix string
}

func (o Options) withDefaults() Options {
	if o.MaxSessions < 1 {
		o.MaxSessions = 64
	}
	if o.IdleTTL <= 0 {
		o.IdleTTL = 5 * time.Minute
	}
	if o.ReapInterval <= 0 {
		o.ReapInterval = o.IdleTTL / 4
		if o.ReapInterval < 50*time.Millisecond {
			o.ReapInterval = 50 * time.Millisecond
		}
		if o.ReapInterval > 30*time.Second {
			o.ReapInterval = 30 * time.Second
		}
	}
	if o.EventBuffer < 1 {
		o.EventBuffer = 256
	}
	if o.MaxSubscribers < 1 {
		o.MaxSubscribers = 32
	}
	if o.MIWindow < 0 {
		o.MIWindow = 0
	} else if o.MIWindow == 0 {
		o.MIWindow = 25
	}
	if o.TraceRing < 1 {
		o.TraceRing = 4096
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	if o.IDPrefix == "" {
		o.IDPrefix = "s"
	}
	return o
}

// Registry owns the live session set, its limits and the idle reaper.
type Registry struct {
	opts Options

	mu        sync.Mutex
	sessions  map[string]*Session
	restoring map[string]chan struct{} // per-ID restore singleflight
	seq       uint64                   // ID mint counter
	ord       uint64                   // insertion ordinal (List order)
	shut      bool

	stop chan struct{}
	wg   sync.WaitGroup

	created       atomic.Uint64
	restored      atomic.Uint64 // journal restores (each also counts in created)
	closed        atomic.Uint64 // deleted by clients or shut down
	reaped        atomic.Uint64 // closed by the idle reaper
	rejected      atomic.Uint64 // creations refused at the cap
	steps         atomic.Uint64
	samples       atomic.Uint64
	published     atomic.Uint64
	dropped       atomic.Uint64
	subsGauge     atomic.Int64
	journalErrors atomic.Uint64
}

// NewRegistry builds a registry and starts its idle reaper. Call Close
// to stop the reaper and end every live session.
func NewRegistry(opts Options) *Registry {
	r := &Registry{
		opts:      opts.withDefaults(),
		sessions:  map[string]*Session{},
		restoring: map[string]chan struct{}{},
		stop:      make(chan struct{}),
	}
	r.wg.Add(1)
	go r.reapLoop()
	return r
}

// Create validates the spec, boots (snapshot-forks) the session's
// machine, and registers the session under a freshly minted ID. The
// MaxSessions cap is checked before the boot (fast rejection under
// load) and again at insertion (the authoritative check).
func (r *Registry) Create(spec Spec) (*Session, error) {
	return r.CreateWithID("", spec)
}

// CreateWithID is Create with a caller-chosen ID — the clustered create
// path mints the ID on the receiving shard (NewID) and forwards it to
// the ring owner, so the ID the client sees routes back to the same
// owner forever. An empty ID mints one locally.
func (r *Registry) CreateWithID(id string, spec Spec) (*Session, error) {
	if id != "" {
		if err := validID(id); err != nil {
			return nil, err
		}
	}
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := r.admit(); err != nil {
		return nil, err
	}
	s, err := newSession(r, spec)
	if err != nil {
		return nil, err
	}
	if err := r.insert(s, id); err != nil {
		return nil, err
	}
	r.created.Add(1)
	s.mu.Lock()
	s.journalLocked()
	s.mu.Unlock()
	return s, nil
}

// NewID mints an unused session ID ("<prefix>-<n>"), skipping IDs that
// are live or still journaled from a previous run — reusing one would
// overwrite a restorable session's journal.
func (r *Registry) NewID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.newIDLocked()
}

func (r *Registry) newIDLocked() string {
	for {
		r.seq++
		id := fmt.Sprintf("%s-%d", r.opts.IDPrefix, r.seq)
		if _, live := r.sessions[id]; live {
			continue
		}
		if r.journalLive(id) {
			continue
		}
		return id
	}
}

// admit fast-fails creation at the cap or during shutdown, before the
// expensive machine boot; insert re-checks authoritatively.
func (r *Registry) admit() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.shut {
		return ErrRegistryClosed
	}
	if len(r.sessions) >= r.opts.MaxSessions {
		r.rejected.Add(1)
		return ErrLimit
	}
	return nil
}

func (r *Registry) insert(s *Session, id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.shut {
		return ErrRegistryClosed
	}
	if len(r.sessions) >= r.opts.MaxSessions {
		r.rejected.Add(1)
		return ErrLimit
	}
	if id == "" {
		id = r.newIDLocked()
	} else if _, taken := r.sessions[id]; taken {
		return fmt.Errorf("%w: session id %q already live", ErrBadSpec, id)
	}
	r.ord++
	s.ID = id
	s.seq = r.ord
	r.sessions[id] = s
	return nil
}

// Get returns a live session by ID. With a Journal configured, a miss
// falls through to the restore path: journaled sessions from a previous
// run (or a dead ring peer, via replication) come back transparently on
// first access.
func (r *Registry) Get(id string) (*Session, bool) {
	r.mu.Lock()
	s, ok := r.sessions[id]
	r.mu.Unlock()
	if ok {
		return s, true
	}
	return r.restore(id)
}

// List returns the live sessions in creation order.
func (r *Registry) List() []*Session {
	r.mu.Lock()
	out := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Delete removes and closes a session, tombstoning its journal so it
// stays dead across restarts and failovers; false when the ID is
// unknown. A journaled-but-never-restored session (post-restart, before
// first access) deletes cleanly too: the tombstone is the deletion.
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	s, ok := r.sessions[id]
	if ok {
		delete(r.sessions, id)
	}
	r.mu.Unlock()
	if !ok {
		if validID(id) == nil && r.journalLive(id) {
			r.tombstone(id, CloseDeleted)
			return true
		}
		return false
	}
	if s.close(CloseDeleted) {
		r.closed.Add(1)
	}
	r.tombstone(id, CloseDeleted)
	return true
}

// Close stops the reaper and ends every live session (drain path).
func (r *Registry) Close() {
	r.mu.Lock()
	if r.shut {
		r.mu.Unlock()
		return
	}
	r.shut = true
	victims := make([]*Session, 0, len(r.sessions))
	for id, s := range r.sessions {
		delete(r.sessions, id)
		victims = append(victims, s)
	}
	r.mu.Unlock()
	close(r.stop)
	r.wg.Wait()
	for _, s := range victims {
		if s.close(CloseShutdown) {
			r.closed.Add(1)
		}
	}
}

func (r *Registry) reapLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.opts.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.reapIdle()
		}
	}
}

// reapIdle closes every session idle past IdleTTL. Reaping mid-stream
// is deliberate: subscribers get a closed event and their Done channel
// closes, but a stream alone never keeps the machine alive.
func (r *Registry) reapIdle() {
	now := r.opts.Clock()
	var victims []*Session
	r.mu.Lock()
	for id, s := range r.sessions {
		if now.Sub(s.LastActive()) >= r.opts.IdleTTL {
			delete(r.sessions, id)
			victims = append(victims, s)
		}
	}
	r.mu.Unlock()
	for _, s := range victims {
		if s.close(CloseIdle) {
			r.reaped.Add(1)
		}
		r.tombstone(s.ID, CloseIdle)
	}
}

// ReapNow runs one reaper sweep immediately (tests drive reaping
// deterministically through an injected Clock instead of waiting out
// real TTLs).
func (r *Registry) ReapNow() { r.reapIdle() }

// Stats is the /metricz sessions section. The lifecycle counters
// balance: Created == Active + Closed + Reaped in any settled snapshot.
// Restored attributes how many of Created came through the journal
// restore path (each restore counts in both), so the restore path is
// visible without breaking the balance.
type Stats struct {
	Active          int    `json:"active"`
	Created         uint64 `json:"created"`
	Restored        uint64 `json:"restored"`
	Closed          uint64 `json:"closed"`
	Reaped          uint64 `json:"reaped"`
	Rejected        uint64 `json:"rejected"`
	Steps           uint64 `json:"steps"`
	Samples         uint64 `json:"samples"`
	EventsPublished uint64 `json:"events_published"`
	EventsDropped   uint64 `json:"events_dropped"`
	Subscribers     int64  `json:"subscribers"`
	JournalErrors   uint64 `json:"journal_errors"`
	MaxSessions     int    `json:"max_sessions"`
}

// Stats returns the registry's counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	active := len(r.sessions)
	r.mu.Unlock()
	return Stats{
		Active:          active,
		Created:         r.created.Load(),
		Restored:        r.restored.Load(),
		Closed:          r.closed.Load(),
		Reaped:          r.reaped.Load(),
		Rejected:        r.rejected.Load(),
		Steps:           r.steps.Load(),
		Samples:         r.samples.Load(),
		EventsPublished: r.published.Load(),
		EventsDropped:   r.dropped.Load(),
		Subscribers:     r.subsGauge.Load(),
		JournalErrors:   r.journalErrors.Load(),
		MaxSessions:     r.opts.MaxSessions,
	}
}
