package crypto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestModExpBasics(t *testing.T) {
	cases := []struct{ b, e, m, want uint64 }{
		{2, 10, 1000, 24},
		{3, 0, 7, 1},
		{5, 1, 7, 5},
		{7, 2, 100, 49},
		{2, 61, GroupP, 1}, // 2^61 = (2^61 - 1) + 1, so it reduces to 1
		{10, 5, 1, 0},
	}
	for _, c := range cases {
		if got := ModExp(c.b, c.e, c.m); got != c.want {
			t.Errorf("ModExp(%d,%d,%d) = %d, want %d", c.b, c.e, c.m, got, c.want)
		}
	}
}

// Property: Fermat's little theorem in the Mersenne-prime group.
func TestPropertyFermat(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Uint64()%(GroupP-2) + 1
		return ModExp(a, GroupP-1, GroupP) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: encryption round-trips through decryption.
func TestPropertyEncryptDecrypt(t *testing.T) {
	f := func(seed int64, mRaw uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		key := GenerateKey(rng)
		m := mRaw%(GroupP-1) + 1
		k := rng.Uint64()%(GroupP-2) + 1
		return Decrypt(key, Encrypt(key, m, k)) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestKeyBits(t *testing.T) {
	// x = 0b1011: bits after the leading 1 are 0,1,1.
	got := KeyBits(0b1011)
	want := []bool{false, true, true}
	if len(got) != len(want) {
		t.Fatalf("KeyBits(11) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("KeyBits(11) = %v, want %v", got, want)
		}
	}
}

func TestGenerateShortKey(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	k := GenerateShortKey(rng, 24)
	if n := len(KeyBits(k.X)) + 1; n != 24 {
		t.Errorf("short key has %d significant bits, want 24", n)
	}
	if k.X&1 != 1 {
		t.Error("short key exponent should be odd")
	}
	// Clamping.
	if k := GenerateShortKey(rng, 100); len(KeyBits(k.X))+1 > 60 {
		t.Error("key bits not clamped to 60")
	}
}

func TestGenerateKeyConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	k := GenerateKey(rng)
	if k.Y != ModExp(k.G, k.X, k.P) {
		t.Fatal("public key inconsistent with secret exponent")
	}
}

func TestMulModNoOverflow(t *testing.T) {
	// Values near the modulus would overflow naive multiplication.
	a, b := uint64(GroupP-1), uint64(GroupP-2)
	got := mulMod(a, b, GroupP)
	// (P-1)(P-2) mod P = (P^2 -3P + 2) mod P = 2.
	if got != 2 {
		t.Fatalf("mulMod(P-1, P-2, P) = %d, want 2", got)
	}
}
