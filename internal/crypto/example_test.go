package crypto_test

import (
	"fmt"
	"math/rand"

	"timeprotection/internal/crypto"
)

// ExampleDecrypt round-trips a message through ElGamal — the arithmetic
// the Figure 4 victim really performs while leaking its exponent through
// the cache.
func ExampleDecrypt() {
	rng := rand.New(rand.NewSource(7))
	key := crypto.GenerateKey(rng)
	ct := crypto.Encrypt(key, 424242, rng.Uint64()%(crypto.GroupP-2)+1)
	fmt.Println(crypto.Decrypt(key, ct))
	// Output:
	// 424242
}

// ExampleKeyBits shows the bit sequence square-and-multiply walks — one
// square per bit, one extra multiply per set bit, which is exactly what
// the LLC spy observes.
func ExampleKeyBits() {
	for _, b := range crypto.KeyBits(0b1011) {
		if b {
			fmt.Print("square+multiply ")
		} else {
			fmt.Print("square ")
		}
	}
	fmt.Println()
	// Output:
	// square square+multiply square+multiply
}
