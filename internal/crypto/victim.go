package crypto

import (
	"timeprotection/internal/kernel"
)

// Victim repeatedly decrypts a ciphertext, driving the square and
// multiply routines' instruction footprints through the simulated cache
// hierarchy: per exponent bit one pass over the square routine's code,
// plus a pass over the multiply routine's code when the bit is set —
// the access pattern Liu et al.'s attack reads out of the LLC.
type Victim struct {
	Key    PrivateKey
	Cipher Ciphertext

	// SquareVA / MulVA are the virtual addresses of the two routines'
	// code in the victim's address space (mapped by the harness).
	SquareVA, MulVA uint64
	// RoutineBytes is each routine's code size.
	RoutineBytes int
	// GapCycles spaces consecutive bits so a spy's probe cadence can
	// resolve them (the paper's victim has real arithmetic between).
	GapCycles int

	// Decryptions counts completed decryptions; Plaintext holds the last
	// (functionally real) result.
	Decryptions int
	Plaintext   uint64

	bitIdx int
	bits   []bool

	// state of the real computation, advanced bit by bit
	acc uint64
}

// NewVictim prepares a victim for key and ciphertext.
func NewVictim(key PrivateKey, c Ciphertext, squareVA, mulVA uint64, routineBytes int) *Victim {
	v := &Victim{
		Key: key, Cipher: c,
		SquareVA: squareVA, MulVA: mulVA,
		RoutineBytes: routineBytes,
		GapCycles:    3000,
	}
	v.reset()
	return v
}

func (v *Victim) reset() {
	v.bits = KeyBits(v.Key.X)
	v.bitIdx = 0
	v.acc = v.Cipher.C1 // implicit leading 1 bit of the exponent
}

// Bits exposes the secret bit sequence (ground truth for evaluating the
// attack).
func (v *Victim) Bits() []bool { return v.bits }

// execRoutine charges the instruction fetches of one routine pass.
func (v *Victim) execRoutine(e *kernel.Env, base uint64) {
	for off := 0; off < v.RoutineBytes; off += 64 {
		e.Exec(base + uint64(off))
	}
}

// Step processes one exponent bit per invocation: square always,
// multiply when the bit is set (both functionally and in the cache).
// Each routine pass is followed by its arithmetic time (GapCycles), so
// a set bit roughly doubles the interval to the next square — the
// interval encoding the Figure 4 attack reads out.
func (v *Victim) Step(e *kernel.Env) bool {
	v.execRoutine(e, v.SquareVA)
	v.acc = mulMod(v.acc, v.acc, v.Key.P)
	e.Spin(v.GapCycles)
	if v.bits[v.bitIdx] {
		v.execRoutine(e, v.MulVA)
		v.acc = mulMod(v.acc, v.Cipher.C1, v.Key.P)
		e.Spin(v.GapCycles)
	}
	v.bitIdx++
	if v.bitIdx == len(v.bits) {
		// Finish the decryption with the (non-secret-dependent) inverse.
		s := v.acc
		inv := ModExp(s, v.Key.P-2, v.Key.P)
		v.Plaintext = mulMod(v.Cipher.C2, inv, v.Key.P)
		v.Decryptions++
		v.reset()
	}
	return true
}
