// Package crypto implements the Figure 4 victim: an ElGamal decryption
// using square-and-multiply modular exponentiation, in the style of
// GnuPG 1.4.13. The arithmetic is real (over 64-bit groups); the cache
// behaviour is modelled by executing the square and multiply routines'
// instruction footprints through the simulated hierarchy, so the secret
// exponent's bit pattern is visible — or not — to an LLC spy exactly as
// on hardware.
package crypto

import (
	"math/bits"
	"math/rand"
)

// mulMod returns a*b mod m without overflow.
func mulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// ModExp computes base^exp mod m by left-to-right square-and-multiply —
// the exact structure the attack exploits: one square per bit, one
// multiply per set bit.
func ModExp(base, exp, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	result := uint64(1)
	for i := bits.Len64(exp) - 1; i >= 0; i-- {
		result = mulMod(result, result, m)
		if exp>>uint(i)&1 == 1 {
			result = mulMod(result, base, m)
		}
	}
	return result
}

// p is a 61-bit safe-ish prime group modulus (2^61 - 1, a Mersenne
// prime) with generator 3; small enough for uint64 arithmetic, large
// enough that exponents have plenty of bits to leak.
const (
	GroupP = (1 << 61) - 1
	GroupG = 3
)

// PrivateKey is an ElGamal private key.
type PrivateKey struct {
	P, G uint64
	X    uint64 // secret exponent
	Y    uint64 // public: G^X mod P
}

// GenerateKey derives a key from the deterministic rng.
func GenerateKey(rng *rand.Rand) PrivateKey {
	x := rng.Uint64()%(GroupP-2) + 1
	return PrivateKey{P: GroupP, G: GroupG, X: x, Y: ModExp(GroupG, x, GroupP)}
}

// GenerateShortKey derives a key whose exponent has exactly `bits`
// significant bits. The Figure 4 harness uses short exponents so a full
// square-and-multiply pass fits in a bounded spy trace; the leak
// mechanism is identical at any length.
func GenerateShortKey(rng *rand.Rand, keyBits int) PrivateKey {
	if keyBits < 2 {
		keyBits = 2
	}
	if keyBits > 60 {
		keyBits = 60
	}
	x := rng.Uint64()%(1<<uint(keyBits-1)) | 1<<uint(keyBits-1) | 1
	return PrivateKey{P: GroupP, G: GroupG, X: x, Y: ModExp(GroupG, x, GroupP)}
}

// Ciphertext is an ElGamal ciphertext pair.
type Ciphertext struct{ C1, C2 uint64 }

// Encrypt encrypts m under the public part of key with ephemeral k.
func Encrypt(key PrivateKey, m, k uint64) Ciphertext {
	return Ciphertext{
		C1: ModExp(key.G, k, key.P),
		C2: mulMod(m, ModExp(key.Y, k, key.P), key.P),
	}
}

// Decrypt recovers m = C2 * (C1^X)^(P-2) mod P (Fermat inverse). The
// C1^X exponentiation is the secret-dependent square-and-multiply.
func Decrypt(key PrivateKey, c Ciphertext) uint64 {
	s := ModExp(c.C1, key.X, key.P)
	inv := ModExp(s, key.P-2, key.P)
	return mulMod(c.C2, inv, key.P)
}

// KeyBits returns the exponent's bits most-significant first, skipping
// the leading 1 (which square-and-multiply handles implicitly).
func KeyBits(x uint64) []bool {
	n := bits.Len64(x)
	out := make([]bool, 0, n-1)
	for i := n - 2; i >= 0; i-- {
		out = append(out, x>>uint(i)&1 == 1)
	}
	return out
}
