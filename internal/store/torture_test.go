package store_test

import (
	"fmt"
	"sync"
	"testing"

	"timeprotection/internal/fault"
	"timeprotection/internal/store"
)

// body renders the deterministic "driver output" for key i.
func body(i int) []byte {
	return []byte(fmt.Sprintf("artefact %d body bytes that must never be served torn\n", i))
}

// TestTortureCrashMidWrite hammers the store through a deterministic
// disk-fault injector that fails writes outright (ENOSPC), lands torn
// prefixes and "dies" (short write), fails renames, and completes
// renames before "dying" (orphans) — then abandons the store without
// Close, exactly like a SIGKILL, and reopens the directory. The
// recovered store must never serve a wrong or torn byte: every key
// either round-trips its exact bytes or is a clean miss to recompute.
func TestTortureCrashMidWrite(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			disk := fault.NewDisk(seed, fault.DiskRates{
				WriteError:   0.15,
				ShortWrite:   0.15,
				RenameError:  0.1,
				RenameOrphan: 0.1,
			})
			s, err := store.Open(dir, store.Options{Hooks: disk.Hooks()})
			if err != nil {
				t.Fatal(err)
			}
			const n = 40
			stored := make(map[int]bool)
			for i := 0; i < n; i++ {
				if err := s.Put(store.Key(fmt.Sprint(i)), body(i)); err == nil {
					stored[i] = true
				}
			}
			ds := disk.Stats()
			if ds.WriteErrors == 0 || ds.ShortWrites == 0 || ds.Orphans == 0 {
				t.Fatalf("injection too quiet to prove anything: %+v", ds)
			}
			// The live store already degrades correctly: acknowledged
			// puts serve their exact bytes, failed puts are misses.
			for i := 0; i < n; i++ {
				got, ok := s.Get(store.Key(fmt.Sprint(i)))
				if stored[i] && (!ok || string(got) != string(body(i))) {
					t.Errorf("live: acknowledged entry %d = %q, %v", i, got, ok)
				}
				if !stored[i] && ok {
					t.Errorf("live: failed put %d served %q", i, got)
				}
			}
			// SIGKILL: no Close, no journal sync beyond what Put did.
			// Reopen and re-verify every acknowledged entry.
			s2, err := store.Open(dir, store.Options{})
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer s2.Close()
			st := s2.Stats()
			if got := uint64(st.Recovered); got != uint64(len(stored)) {
				t.Errorf("recovered %d entries, acknowledged %d (%+v)", got, len(stored), st)
			}
			if ds.Orphans > 0 && st.Orphans == 0 {
				t.Errorf("injector orphaned %d objects but recovery quarantined none: %+v", ds.Orphans, st)
			}
			if st.Orphans != st.Quarantined {
				t.Errorf("orphans %d != quarantined %d — crash left other damage classes", st.Orphans, st.Quarantined)
			}
			for i := 0; i < n; i++ {
				got, ok := s2.Get(store.Key(fmt.Sprint(i)))
				if stored[i] && (!ok || string(got) != string(body(i))) {
					t.Errorf("recovered: acknowledged entry %d = %q, %v", i, got, ok)
				}
				if !stored[i] && ok {
					t.Errorf("recovered: failed put %d served %q", i, got)
				}
			}
			// The quarantine held the orphans rather than deleting them.
			if st.Orphans > 0 {
				if q := s2.Stats().Quarantined; q == 0 {
					t.Error("no quarantine record of the orphaned objects")
				}
			}
			// Degrade-to-recompute: every failed slot accepts a clean
			// re-put now that the injector is gone.
			for i := 0; i < n; i++ {
				if stored[i] {
					continue
				}
				if err := s2.Put(store.Key(fmt.Sprint(i)), body(i)); err != nil {
					t.Errorf("re-put %d after recovery: %v", i, err)
				}
			}
			if got := s2.Len(); got != n {
				t.Errorf("after recompute, %d entries, want %d", got, n)
			}
		})
	}
}

// TestTortureDeterministicReplay pins the injector contract the CI
// chaos phases rely on: the same seed produces the same fault sequence.
func TestTortureDeterministicReplay(t *testing.T) {
	run := func() (map[int]bool, fault.DiskStats) {
		dir := t.TempDir()
		disk := fault.NewDisk(7, fault.DiskRates{WriteError: 0.2, ShortWrite: 0.2, RenameOrphan: 0.1})
		s, err := store.Open(dir, store.Options{Hooks: disk.Hooks()})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		ok := make(map[int]bool)
		for i := 0; i < 30; i++ {
			ok[i] = s.Put(store.Key(fmt.Sprint(i)), body(i)) == nil
		}
		return ok, disk.Stats()
	}
	ok1, st1 := run()
	ok2, st2 := run()
	if st1 != st2 {
		t.Errorf("same seed, different fault stats: %+v vs %+v", st1, st2)
	}
	for i, v := range ok1 {
		if ok2[i] != v {
			t.Errorf("same seed, different outcome for put %d", i)
		}
	}
}

// TestTortureConcurrent runs injected puts and verified gets from many
// goroutines (the -race meat): no interleaving may serve wrong bytes or
// corrupt the index, and a final recovery pass must verify clean.
func TestTortureConcurrent(t *testing.T) {
	dir := t.TempDir()
	disk := fault.NewDisk(3, fault.DiskRates{WriteError: 0.1, ShortWrite: 0.1, RenameError: 0.05, RenameOrphan: 0.05})
	s, err := store.Open(dir, store.Options{Hooks: disk.Hooks()})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 16
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := (g*13 + i) % keys
				switch i % 3 {
				case 0, 1:
					s.Put(store.Key(fmt.Sprint(k)), body(k))
				case 2:
					if got, ok := s.Get(store.Key(fmt.Sprint(k))); ok && string(got) != string(body(k)) {
						t.Errorf("served wrong bytes for key %d: %q", k, got)
					}
				}
			}
		}()
	}
	wg.Wait()
	// Abandon without Close; recovery must still verify clean.
	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for k := 0; k < keys; k++ {
		if got, ok := s2.Get(store.Key(fmt.Sprint(k))); ok && string(got) != string(body(k)) {
			t.Errorf("recovered wrong bytes for key %d: %q", k, got)
		}
	}
}
