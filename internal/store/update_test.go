package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustUpdate(t *testing.T, s *Store, key string, body []byte) {
	t.Helper()
	if err := s.Update(key, body); err != nil {
		t.Fatalf("Update(%s): %v", key, err)
	}
}

// TestUpdateReplacesInPlace: Update overwrites a key's bytes (Put would
// treat the second write as a duplicate no-op), reads serve the new
// version, and the byte ledger follows the size change.
func TestUpdateReplacesInPlace(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	key := "sess-s-1"
	mustUpdate(t, s, key, []byte("v1"))
	mustUpdate(t, s, key, []byte("version two, longer"))
	got, ok := s.Get(key)
	if !ok || string(got) != "version two, longer" {
		t.Fatalf("Get after update = %q, %v", got, ok)
	}
	st := s.Stats()
	if st.Updates != 2 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 2 updates over 1 entry", st)
	}
	if st.Bytes != int64(len("version two, longer")) {
		t.Errorf("bytes = %d, want the latest version's size", st.Bytes)
	}
	// Same-bytes update is a recency refresh, not a rewrite.
	mustUpdate(t, s, key, []byte("version two, longer"))
	if st := s.Stats(); st.Updates != 3 || st.Bytes != int64(len("version two, longer")) {
		t.Errorf("no-op update stats = %+v", st)
	}
}

// TestUpdateSurvivesReopen: the latest updated version is what a
// restart recovers — the journal's duplicate put records adopt the new
// sum instead of keeping the first one (which would quarantine every
// updated entry as a mismatch).
func TestUpdateSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	key := "sess-s-1"
	for i := 0; i < 4; i++ {
		mustUpdate(t, s, key, []byte(fmt.Sprintf("journal generation %d", i)))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	got, ok := s2.Get(key)
	if !ok || string(got) != "journal generation 3" {
		t.Fatalf("after reopen = %q, %v (stats %+v)", got, ok, s2.Stats())
	}
	if st := s2.Stats(); st.Quarantined != 0 || st.Reverted != 0 || st.Entries != 1 {
		t.Errorf("clean reopen stats = %+v", st)
	}
}

// TestUpdateCrashRollsBack: Update journals the new version before the
// file replace, so a crash between the two leaves the file holding the
// previous version. Recovery must roll the entry back to that version
// (counted as Reverted), not quarantine it — for a session journal,
// rollback loses one unacknowledged step; quarantine would lose the
// whole session.
func TestUpdateCrashRollsBack(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	key := "sess-s-1"
	mustUpdate(t, s, key, []byte("durable old version"))
	mustUpdate(t, s, key, []byte("new version"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash point: the journal holds the new version's
	// record but the object file still holds the old bytes (the rename
	// never landed).
	if err := os.WriteFile(filepath.Join(dir, "objects", key), []byte("durable old version"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	got, ok := s2.Get(key)
	if !ok || string(got) != "durable old version" {
		t.Fatalf("after torn update = %q, %v (stats %+v)", got, ok, s2.Stats())
	}
	st := s2.Stats()
	if st.Reverted != 1 || st.Quarantined != 0 || st.Entries != 1 {
		t.Errorf("rollback stats = %+v, want 1 reverted, 0 quarantined", st)
	}
	// The rolled-back slot is writable again.
	mustUpdate(t, s2, key, []byte("post-crash version"))
	if got, ok := s2.Get(key); !ok || string(got) != "post-crash version" {
		t.Fatalf("post-rollback update = %q, %v", got, ok)
	}
}

// TestUpdateTornToGarbageQuarantines: if the file matches neither the
// latest journal record nor the previous one, recovery cannot pick a
// version and must quarantine as before.
func TestUpdateTornToGarbageQuarantines(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	key := "sess-s-1"
	mustUpdate(t, s, key, []byte("durable old version"))
	mustUpdate(t, s, key, []byte("new version"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "objects", key), []byte("garbage bytes!!!"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	if body, ok := s2.Get(key); ok {
		t.Fatalf("garbage entry served: %q", body)
	}
	if st := s2.Stats(); st.Quarantined != 1 || st.Reverted != 0 {
		t.Errorf("garbage stats = %+v, want quarantine", st)
	}
}

// TestUpdateConcurrentKeys: concurrent updates across keys and repeated
// updates of one key race-free; the per-key lock serializes same-key
// commits so journal order always matches rename order.
func TestUpdateConcurrentKeys(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			key := fmt.Sprintf("sess-s-%d", g%4) // 2 goroutines per key
			var err error
			for i := 0; i < 20 && err == nil; i++ {
				err = s.Update(key, []byte(fmt.Sprintf("g%d i%d", g, i)))
			}
			done <- err
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent update: %v", err)
		}
	}
	if st := s.Stats(); st.Entries != 4 || st.PutErrors != 0 {
		t.Errorf("stats = %+v, want 4 entries, no errors", st)
	}
}
