// Package store implements the durable tier under tpserved's result
// cache and tpbench's resume path: a content-addressed, crash-safe
// on-disk result store. Runs are deterministic, so a stored body never
// expires — the store's only jobs are to never lie (every read is
// checksum-verified) and to never lose legally-completed work to a
// crash (every write is atomic and journalled).
//
// Layout under the store directory:
//
//	objects/<key>   one file per entry; the body bytes, named by the
//	                content address of the *request* (sha256 hex of the
//	                canonical plan-entry identity)
//	journal.jsonl   append-only record of puts, accesses and deletes;
//	                replayed at Open to rebuild the index and LRU order
//	tmp/            atomic-write staging; swept at Open
//	quarantine/     corrupt, truncated or unjournalled files are moved
//	                here (never deleted) for post-mortem
//
// Write discipline mirrors a write-back cache flushing a dirty line:
// the body is staged in tmp/ and fsynced, renamed into objects/ (the
// atomic commit point), the directory is fsynced, and only then is the
// entry journalled (fsynced append). A crash at any point leaves either
// no trace (swept tmp file), an unjournalled object (quarantined at
// next Open), or a fully committed entry — never a half-entry the index
// trusts. Reads re-hash the body and quarantine on mismatch, so even
// bit rot degrades to a recompute, never to serving wrong bytes.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
)

// ErrClosed is returned by Put after Close.
var ErrClosed = errors.New("store closed")

// Hooks intercepts the store's runtime disk mutations for fault
// injection (internal/fault's Disk implements matching methods). A nil
// field selects the real operation. Hooks are crash-faithful: a failing
// WriteFile may leave a partial tmp file (swept at next Open, like a
// real crash would) and a failing Rename may have completed the rename
// (producing an unjournalled orphan, quarantined at next Open).
// Recovery itself never goes through hooks — Open must stay reliable
// even while the injector rages.
type Hooks struct {
	// WriteFile replaces create+write+fsync of the staging file.
	WriteFile func(path string, data []byte) error
	// Rename replaces the atomic commit rename.
	Rename func(oldpath, newpath string) error
}

// Options configures a Store. The zero value is a plain unbounded
// store.
type Options struct {
	// MaxBytes caps the total object bytes; exceeding it evicts the
	// least-recently-accessed entries (journal access records carry the
	// LRU order across restarts). 0 = unbounded. A single entry larger
	// than the cap is kept — evicting it could never serve anything.
	MaxBytes int64
	// Hooks injects disk faults (tests); see Hooks.
	Hooks Hooks
	// Log, when non-nil, receives recovery and quarantine notices.
	Log *log.Logger
}

// Stats is a consistent snapshot of the store's counters: it is
// captured under the same mutex every counter mutates under, so
// invariants (hits+misses == lookups, etc.) hold exactly at any
// instant.
type Stats struct {
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes,omitempty"`

	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Updates   uint64 `json:"updates"`
	PutErrors uint64 `json:"put_errors"`

	// Corrupt counts read-time checksum or read failures; Truncated
	// counts open-time size mismatches; Orphans counts unjournalled
	// object files found at Open; Missing counts journalled entries
	// whose file was gone at Open. Every Corrupt/Truncated/Orphan file
	// that could be moved is also counted in Quarantined.
	Corrupt     uint64 `json:"corrupt"`
	Truncated   uint64 `json:"truncated"`
	Orphans     uint64 `json:"orphans"`
	Missing     uint64 `json:"missing"`
	Quarantined uint64 `json:"quarantined"`

	// Reverted counts updated entries rolled back at Open to the
	// previous journalled version (a crash landed between an Update's
	// journal append and its rename — the file still holds the prior
	// bytes, which remain perfectly good).
	Reverted uint64 `json:"reverted"`

	// TornRecords counts journal lines dropped at Open (a crash mid
	// journal append tears at most the tail).
	TornRecords uint64 `json:"torn_records"`
	GCEvictions uint64 `json:"gc_evictions"`
	// Recovered is how many entries the last Open replayed and
	// verified.
	Recovered int `json:"recovered"`
}

// Store is a crash-safe content-addressed result store. All methods
// are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	journal *os.File
	ll      *list.List // front = most recently used
	index   map[string]*list.Element
	bytes   int64
	tmpSeq  uint64
	stats   Stats

	klMu   sync.Mutex
	klocks map[string]*keyLock
}

// keyLock serializes Updates per key: a later Update's rename must
// never land before an earlier one's journal record, or the journal
// would vouch for bytes the object no longer holds.
type keyLock struct {
	mu   sync.Mutex
	refs int
}

func (s *Store) lockKey(key string) func() {
	s.klMu.Lock()
	kl := s.klocks[key]
	if kl == nil {
		kl = &keyLock{}
		s.klocks[key] = kl
	}
	kl.refs++
	s.klMu.Unlock()
	kl.mu.Lock()
	return func() {
		kl.mu.Unlock()
		s.klMu.Lock()
		kl.refs--
		if kl.refs == 0 {
			delete(s.klocks, key)
		}
		s.klMu.Unlock()
	}
}

type entry struct {
	key  string
	sum  string
	size int64
}

// Key hashes a canonical request description into the store's content
// address space (sha256 hex) — the same addressing the service cache
// uses, so the two tiers share keys.
func Key(canonical string) string {
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:])
}

// Open creates or reopens a store directory, sweeping staging
// leftovers, replaying the journal, verifying and quarantining
// inconsistent entries, and compacting the journal. A damaged store
// never fails Open — damage degrades to fewer recovered entries, each
// counted and (where a file exists) quarantined.
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{
		dir:    dir,
		opts:   opts,
		ll:     list.New(),
		index:  make(map[string]*list.Element),
		klocks: make(map[string]*keyLock),
	}
	for _, d := range []string{dir, s.path("objects"), s.path("tmp"), s.path("quarantine")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	if err := s.recover(); err != nil {
		return nil, fmt.Errorf("store: recover: %w", err)
	}
	j, err := os.OpenFile(s.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	s.journal = j
	s.mu.Lock()
	s.gcLocked()
	s.mu.Unlock()
	return s, nil
}

func (s *Store) path(sub string) string       { return filepath.Join(s.dir, sub) }
func (s *Store) objectPath(key string) string { return filepath.Join(s.dir, "objects", key) }
func (s *Store) journalPath() string          { return filepath.Join(s.dir, "journal.jsonl") }

func (s *Store) logf(format string, args ...any) {
	if s.opts.Log != nil {
		s.opts.Log.Printf("store: "+format, args...)
	}
}

func bodySum(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// validKey rejects keys that cannot safely be file names. Content
// addresses from Key always pass.
func validKey(key string) error {
	if key == "" || len(key) > 128 {
		return fmt.Errorf("store: invalid key %q", key)
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case (c == '.' || c == '_' || c == '-') && i > 0:
		default:
			return fmt.Errorf("store: invalid key %q", key)
		}
	}
	return nil
}

// Get returns the stored body for a key, verifying its checksum. A
// corrupt or unreadable entry is quarantined and reported as a miss —
// the caller recomputes; the store never fails a request over bad disk
// state and never returns unverified bytes.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	el, ok := s.index[key]
	if !ok {
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	e := el.Value.(*entry)
	s.mu.Unlock()

	data, err := os.ReadFile(s.objectPath(key))

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, still := s.index[key]; !still {
		// Evicted by GC between the lookup and the read: an ordinary
		// miss, not corruption.
		s.stats.Misses++
		return nil, false
	}
	if err != nil || int64(len(data)) != e.size || bodySum(data) != e.sum {
		s.stats.Corrupt++
		s.stats.Misses++
		s.quarantineLocked(key, "corrupt")
		s.dropLocked(key)
		s.logf("quarantined corrupt entry %s (read err=%v)", key, err)
		return nil, false
	}
	s.stats.Hits++
	s.ll.MoveToFront(s.index[key])
	// Access records keep the LRU order across restarts. They are not
	// fsynced — losing the tail to a crash only degrades eviction
	// order, never correctness.
	s.appendLocked(record{Op: opAccess, Key: key}, false)
	return data, true
}

// Put durably stores a body under a key: staged write + fsync, atomic
// rename, directory fsync, fsynced journal append. Re-putting an
// existing key is a no-op (bodies are deterministic). On error the
// entry is simply absent — a half-written staging file waits for the
// next Open's sweep, exactly like a crash.
func (s *Store) Put(key string, body []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	if s.journal == nil {
		s.mu.Unlock()
		return ErrClosed
	}
	if _, ok := s.index[key]; ok {
		s.mu.Unlock()
		return nil
	}
	s.tmpSeq++
	tmp := filepath.Join(s.path("tmp"), fmt.Sprintf("%s.%d", key, s.tmpSeq))
	s.mu.Unlock()

	if err := s.writeFile(tmp, body); err != nil {
		s.fail(err)
		return fmt.Errorf("store: write %s: %w", key, err)
	}
	dst := s.objectPath(key)
	if err := s.rename(tmp, dst); err != nil {
		s.fail(err)
		return fmt.Errorf("store: commit %s: %w", key, err)
	}
	if err := syncDir(filepath.Dir(dst)); err != nil {
		s.fail(err)
		return fmt.Errorf("store: sync objects dir: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return ErrClosed
	}
	if _, ok := s.index[key]; ok {
		// A concurrent Put of the same key won the journal race; our
		// rename overwrote the object with identical bytes.
		s.stats.Puts++
		return nil
	}
	e := &entry{key: key, sum: bodySum(body), size: int64(len(body))}
	if err := s.appendLocked(record{Op: opPut, Key: key, Sum: e.sum, Size: e.size}, true); err != nil {
		// The object is on disk but unjournalled — next Open will
		// quarantine it as an orphan; this Put reports failure.
		s.stats.PutErrors++
		return fmt.Errorf("store: journal %s: %w", key, err)
	}
	s.index[key] = s.ll.PushFront(e)
	s.bytes += e.size
	s.stats.Puts++
	s.gcLocked()
	return nil
}

// Update durably replaces the body stored under a key. Put is for
// content-addressed entries whose bytes never legally change; Update is
// for the few keys that evolve in place — session journals ("sess-*"
// keys). An update whose body already matches the stored checksum only
// refreshes recency.
//
// The commit order inverts Put's: the fsynced journal record (new
// checksum) lands *before* the staged write + rename. Updates replace
// bytes the journal already vouches for, so the dangerous crash window
// is between the two steps — with this order the object file then still
// matches the *previous* record, and recover rolls the entry back to it
// (see Reverted). The key degrades to its last durable version, never
// to quarantine. A non-crash commit failure re-journals the previous
// version immediately so journal and file agree again.
func (s *Store) Update(key string, body []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	unlock := s.lockKey(key)
	defer unlock()

	sum := bodySum(body)
	size := int64(len(body))

	s.mu.Lock()
	if s.journal == nil {
		s.mu.Unlock()
		return ErrClosed
	}
	var prev *entry
	if el, ok := s.index[key]; ok {
		e := el.Value.(*entry)
		if e.sum == sum {
			s.ll.MoveToFront(el)
			s.appendLocked(record{Op: opAccess, Key: key}, false)
			s.stats.Updates++
			s.mu.Unlock()
			return nil
		}
		prev = &entry{key: key, sum: e.sum, size: e.size}
	}
	if err := s.appendLocked(record{Op: opPut, Key: key, Sum: sum, Size: size}, true); err != nil {
		s.stats.PutErrors++
		s.mu.Unlock()
		return fmt.Errorf("store: journal %s: %w", key, err)
	}
	s.tmpSeq++
	tmp := filepath.Join(s.path("tmp"), fmt.Sprintf("%s.%d", key, s.tmpSeq))
	s.mu.Unlock()

	err := s.writeFile(tmp, body)
	if err == nil {
		err = s.rename(tmp, s.objectPath(key))
	}
	if err == nil {
		err = syncDir(filepath.Dir(s.objectPath(key)))
	}
	if err != nil {
		s.mu.Lock()
		s.stats.PutErrors++
		if s.journal != nil {
			if prev != nil {
				s.appendLocked(record{Op: opPut, Key: key, Sum: prev.sum, Size: prev.size}, true)
			} else {
				s.appendLocked(record{Op: opDel, Key: key}, false)
			}
		}
		s.mu.Unlock()
		s.logf("update %s failed: %v", key, err)
		return fmt.Errorf("store: update %s: %w", key, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[key]; ok {
		e := el.Value.(*entry)
		s.bytes += size - e.size
		e.sum, e.size = sum, size
		s.ll.MoveToFront(el)
	} else {
		s.index[key] = s.ll.PushFront(&entry{key: key, sum: sum, size: size})
		s.bytes += size
	}
	s.stats.Updates++
	s.gcLocked()
	return nil
}

func (s *Store) fail(err error) {
	s.mu.Lock()
	s.stats.PutErrors++
	s.mu.Unlock()
	s.logf("put failed: %v", err)
}

// writeFile stages data at path with create+write+fsync, through the
// write hook when set.
func (s *Store) writeFile(path string, data []byte) error {
	if h := s.opts.Hooks.WriteFile; h != nil {
		return h(path, data)
	}
	return WriteFileSync(path, data)
}

func (s *Store) rename(oldpath, newpath string) error {
	if h := s.opts.Hooks.Rename; h != nil {
		return h(oldpath, newpath)
	}
	return os.Rename(oldpath, newpath)
}

// WriteFileSync creates path, writes data and fsyncs before closing —
// the durable half of the temp-file/rename idiom. Exported for fault
// injectors that delegate their clean path to the real operation.
func WriteFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// gcLocked evicts least-recently-accessed entries until the byte cap
// holds. Deletion records are journalled unsynced: losing one to a
// crash merely resurfaces the entry as Missing at next Open.
func (s *Store) gcLocked() {
	max := s.opts.MaxBytes
	if max <= 0 {
		return
	}
	for s.bytes > max && s.ll.Len() > 1 {
		e := s.ll.Back().Value.(*entry)
		os.Remove(s.objectPath(e.key))
		s.appendLocked(record{Op: opDel, Key: e.key}, false)
		s.dropLocked(e.key)
		s.stats.GCEvictions++
	}
}

// dropLocked removes an entry from the in-memory index.
func (s *Store) dropLocked(key string) {
	if el, ok := s.index[key]; ok {
		s.bytes -= el.Value.(*entry).size
		s.ll.Remove(el)
		delete(s.index, key)
	}
}

// quarantineLocked moves an object file into quarantine/ for
// post-mortem, journalling the deletion. Move failures (file already
// gone) still count the quarantine attempt's cause but not Quarantined.
func (s *Store) quarantineLocked(key, reason string) {
	src := s.objectPath(key)
	dst := filepath.Join(s.path("quarantine"), key)
	for n := 1; ; n++ {
		if _, err := os.Lstat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(s.path("quarantine"), fmt.Sprintf("%s.%d", key, n))
	}
	if err := os.Rename(src, dst); err == nil {
		s.stats.Quarantined++
		s.logf("quarantined %s entry %s -> %s", reason, key, dst)
	}
	s.appendLocked(record{Op: opDel, Key: key}, false)
}

// Stats snapshots every counter under the store mutex.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.index)
	st.Bytes = s.bytes
	st.MaxBytes = s.opts.MaxBytes
	return st
}

// Len reports the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Close fsyncs and closes the journal. Further Puts fail with
// ErrClosed; Gets keep answering from the recovered index.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	syncErr := s.journal.Sync()
	closeErr := s.journal.Close()
	s.journal = nil
	return errors.Join(syncErr, closeErr)
}
