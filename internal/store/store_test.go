package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustPut(t *testing.T, s *Store, key string, body []byte) {
	t.Helper()
	if err := s.Put(key, body); err != nil {
		t.Fatalf("Put(%s): %v", key, err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	body := []byte("table2 haswell seed=42\n")
	mustPut(t, s, Key("a"), body)
	got, ok := s.Get(Key("a"))
	if !ok || string(got) != string(body) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := s.Get(Key("absent")); ok {
		t.Fatal("Get(absent) hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Re-putting the same key is a no-op, not an error.
	mustPut(t, s, Key("a"), body)
	if st := s.Stats(); st.Entries != 1 {
		t.Errorf("duplicate put created an entry: %+v", st)
	}
}

func TestInvalidKeys(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	for _, key := range []string{"", ".", "..", "../escape", "a/b", strings.Repeat("x", 200), ".hidden"} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted", key)
		}
	}
}

func TestReopenRecoversEntries(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		mustPut(t, s, Key(fmt.Sprint(i)), []byte(fmt.Sprintf("body %d\n", i)))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Key("late"), []byte("x")); err != ErrClosed {
		t.Errorf("Put after Close = %v, want ErrClosed", err)
	}

	s2 := mustOpen(t, dir, Options{})
	if st := s2.Stats(); st.Recovered != 5 || st.Entries != 5 {
		t.Fatalf("recovered %+v, want 5 entries", st)
	}
	for i := 0; i < 5; i++ {
		got, ok := s2.Get(Key(fmt.Sprint(i)))
		if !ok || string(got) != fmt.Sprintf("body %d\n", i) {
			t.Errorf("entry %d after reopen: %q, %v", i, got, ok)
		}
	}
}

func TestCorruptEntryQuarantinedOnRead(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	key := Key("victim")
	mustPut(t, s, key, []byte("precious bytes\n"))

	// Flip one byte in the object file.
	path := filepath.Join(dir, "objects", key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if body, ok := s.Get(key); ok {
		t.Fatalf("corrupt entry served: %q", body)
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Quarantined != 1 || st.Entries != 0 {
		t.Errorf("stats after corrupt read = %+v", st)
	}
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine dir = %v, %v", q, err)
	}
	// The slot is recomputable: a fresh Put works and serves clean.
	mustPut(t, s, key, []byte("precious bytes\n"))
	if body, ok := s.Get(key); !ok || string(body) != "precious bytes\n" {
		t.Fatalf("re-put entry = %q, %v", body, ok)
	}
}

func TestTruncatedEntryQuarantinedAtOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	key := Key("t")
	mustPut(t, s, key, []byte("twelve bytes\n"))
	s.Close()

	if err := os.Truncate(filepath.Join(dir, "objects", key), 4); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	st := s2.Stats()
	if st.Truncated != 1 || st.Quarantined != 1 || st.Recovered != 0 {
		t.Errorf("stats after truncated open = %+v", st)
	}
	if _, ok := s2.Get(key); ok {
		t.Error("truncated entry served")
	}
}

func TestMissingFileDroppedAtOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	key := Key("gone")
	mustPut(t, s, key, []byte("here today\n"))
	s.Close()
	os.Remove(filepath.Join(dir, "objects", key))

	s2 := mustOpen(t, dir, Options{})
	if st := s2.Stats(); st.Missing != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOrphanQuarantinedAtOpen(t *testing.T) {
	dir := t.TempDir()
	mustOpen(t, dir, Options{}).Close()
	// An object file the journal does not vouch for (crash between
	// rename and journal append).
	orphan := Key("orphan")
	if err := os.WriteFile(filepath.Join(dir, "objects", orphan), []byte("untrusted"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, Options{})
	if st := s.Stats(); st.Orphans != 1 || st.Quarantined != 1 {
		t.Errorf("stats = %+v", st)
	}
	if _, ok := s.Get(orphan); ok {
		t.Error("orphan served without a checksum to verify it")
	}
}

func TestTornJournalTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	mustPut(t, s, Key("a"), []byte("aaa\n"))
	mustPut(t, s, Key("b"), []byte("bbb\n"))
	s.Close()

	// A crash mid-append tears the journal tail.
	f, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"put","key":"cccccc","sha2`)
	f.Close()

	s2 := mustOpen(t, dir, Options{})
	st := s2.Stats()
	if st.TornRecords != 1 || st.Recovered != 2 {
		t.Errorf("stats = %+v, want 1 torn record, 2 recovered", st)
	}
	if body, ok := s2.Get(Key("a")); !ok || string(body) != "aaa\n" {
		t.Errorf("entry a lost to torn tail: %q, %v", body, ok)
	}
	// Compaction rewrote the journal clean: a third open sees no tear.
	s2.Close()
	s3 := mustOpen(t, dir, Options{})
	if st := s3.Stats(); st.TornRecords != 0 || st.Recovered != 2 {
		t.Errorf("post-compaction stats = %+v", st)
	}
}

func TestStagingLeftoversSweptAtOpen(t *testing.T) {
	dir := t.TempDir()
	mustOpen(t, dir, Options{}).Close()
	if err := os.WriteFile(filepath.Join(dir, "tmp", "k.1"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	mustOpen(t, dir, Options{}).Close()
	left, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil || len(left) != 0 {
		t.Errorf("tmp not swept: %v, %v", left, err)
	}
}

func TestGCEvictsLRUAndOrderSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	body := func(i int) []byte { return []byte(strings.Repeat(fmt.Sprintf("%d", i%10), 100)) }
	s := mustOpen(t, dir, Options{MaxBytes: 350})
	mustPut(t, s, Key("a"), body(1))
	mustPut(t, s, Key("b"), body(2))
	mustPut(t, s, Key("c"), body(3))
	// Touch a: LRU order is now b < c < a.
	if _, ok := s.Get(Key("a")); !ok {
		t.Fatal("a missing before GC")
	}
	mustPut(t, s, Key("d"), body(4)) // 400 bytes > 350: evict b
	if _, ok := s.Get(Key("b")); ok {
		t.Error("b survived GC despite being least recently used")
	}
	if _, ok := s.Get(Key("a")); !ok {
		t.Error("recently touched a was evicted")
	}
	if st := s.Stats(); st.GCEvictions != 1 || st.Bytes > 350 {
		t.Errorf("stats = %+v", st)
	}
	s.Close()

	// Reopen with a tighter cap: access order replayed from the journal
	// decides who dies — c was touched less recently than a and d.
	s2 := mustOpen(t, dir, Options{MaxBytes: 250})
	if _, ok := s2.Get(Key("c")); ok {
		t.Error("c survived the tightened cap despite oldest access")
	}
	got := 0
	for _, k := range []string{"a", "d"} {
		if _, ok := s2.Get(Key(k)); ok {
			got++
		}
	}
	if got != 2 {
		t.Errorf("only %d of the 2 most-recent entries survived the tightened cap", got)
	}
}

func TestOversizedSingleEntryKept(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{MaxBytes: 10})
	mustPut(t, s, Key("big"), []byte(strings.Repeat("x", 100)))
	if _, ok := s.Get(Key("big")); !ok {
		t.Error("sole oversized entry evicted — the cap can never serve anything that way")
	}
}

func TestKeyShape(t *testing.T) {
	if Key("x") != Key("x") || Key("x") == Key("y") || len(Key("x")) != 64 {
		t.Error("Key not a stable 64-hex content address")
	}
	if err := validKey(Key("anything")); err != nil {
		t.Errorf("content address rejected: %v", err)
	}
}
