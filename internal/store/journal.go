package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
)

// Journal ops. The journal is the store's source of truth: an object
// file only counts as an entry once its put record is durably appended,
// and the record order carries the LRU order across restarts.
const (
	opPut    = "put"
	opAccess = "access"
	opDel    = "del"
)

// record is one journal.jsonl line.
type record struct {
	Op   string `json:"op"`
	Key  string `json:"key"`
	Sum  string `json:"sha256,omitempty"`
	Size int64  `json:"size,omitempty"`
}

// appendLocked appends one record to the journal (caller holds mu).
// sync selects an fsync after the append: put records are synced (they
// commit an entry), access and del records are not (losing them only
// degrades LRU order or resurfaces a Missing entry at next Open).
func (s *Store) appendLocked(r record, sync bool) error {
	if s.journal == nil {
		return ErrClosed
	}
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := s.journal.Write(b); err != nil {
		return err
	}
	if sync {
		return s.journal.Sync()
	}
	return nil
}

// recover rebuilds the index from disk: sweep staging leftovers, replay
// the journal (tolerating a torn tail), verify every live entry's file,
// quarantine inconsistent or unjournalled objects, and compact the
// journal. Damage never fails recovery — it is counted, quarantined
// where a file exists, and the entry degrades to a recompute.
func (s *Store) recover() error {
	// A crash mid-Put leaves partial staging files; none are
	// committed, so all are garbage.
	if tmps, err := os.ReadDir(s.path("tmp")); err == nil {
		for _, t := range tmps {
			os.Remove(filepath.Join(s.path("tmp"), t.Name()))
		}
	}

	prev, updated := s.replayJournal()

	// Verify each replayed entry's object file. Full checksums are
	// deferred to read time (hashing the whole store at boot would
	// stall restarts); a size check catches truncation now. Updated
	// keys are the exception: a crash between an Update's journal
	// append and its rename leaves the *previous* version's bytes on
	// disk, so they are byte-verified now, falling back to the record
	// the last update replaced.
	for key, el := range s.index {
		e := el.Value.(*entry)
		fi, err := os.Lstat(s.objectPath(key))
		switch {
		case err != nil:
			s.stats.Missing++
			s.dropLocked(key)
			s.logf("recovery: journalled entry %s has no file", key)
		case updated[key]:
			data, rerr := os.ReadFile(s.objectPath(key))
			p, hasPrev := prev[key]
			switch {
			case rerr == nil && int64(len(data)) == e.size && bodySum(data) == e.sum:
				// The last update committed fully.
			case rerr == nil && hasPrev && int64(len(data)) == p.Size && bodySum(data) == p.Sum:
				s.bytes += p.Size - e.size
				e.sum, e.size = p.Sum, p.Size
				s.stats.Reverted++
				s.logf("recovery: entry %s rolled back to previous journalled version", key)
			default:
				s.stats.Corrupt++
				s.quarantineLocked(key, "corrupt")
				s.dropLocked(key)
			}
		case fi.Size() != e.size:
			s.stats.Truncated++
			s.quarantineLocked(key, "truncated")
			s.dropLocked(key)
		}
	}

	// Object files the journal does not vouch for (a crash between
	// rename and journal append) have no checksum to verify against:
	// quarantine rather than trust or delete them.
	if objs, err := os.ReadDir(s.path("objects")); err == nil {
		for _, o := range objs {
			if _, ok := s.index[o.Name()]; !ok {
				s.stats.Orphans++
				s.quarantineLocked(o.Name(), "orphaned")
			}
		}
	}

	s.stats.Recovered = len(s.index)
	if err := s.compactJournal(); err != nil {
		return err
	}
	return nil
}

// replayJournal applies journal records in order, returning per-key
// update history: prev maps each updated key to the record its latest
// put replaced, updated marks keys that saw more than one live put
// (i.e. Update traffic — recover byte-verifies those). Parsing stops at
// the first malformed line: the only crash-consistent damage is a torn
// tail, and anything after a mid-file corruption is untrustworthy —
// records beyond it are dropped (their object files then quarantine as
// orphans).
func (s *Store) replayJournal() (prev map[string]record, updated map[string]bool) {
	prev = make(map[string]record)
	updated = make(map[string]bool)
	data, err := os.ReadFile(s.journalPath())
	if err != nil {
		return prev, updated
	}
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(line, &r); err != nil || validKey(r.Key) != nil {
			for _, rest := range lines[i:] {
				if len(bytes.TrimSpace(rest)) != 0 {
					s.stats.TornRecords++
				}
			}
			s.logf("recovery: journal torn at line %d (%d records dropped)", i+1, s.stats.TornRecords)
			return prev, updated
		}
		switch r.Op {
		case opPut:
			if el, ok := s.index[r.Key]; ok {
				e := el.Value.(*entry)
				if e.sum == r.Sum && e.size == r.Size {
					// Duplicate put (journal race no-op): refresh
					// recency only.
					s.ll.MoveToFront(el)
					continue
				}
				// A later put with a different checksum is an Update:
				// adopt it, remembering what it replaced.
				prev[r.Key] = record{Op: opPut, Key: r.Key, Sum: e.sum, Size: e.size}
				updated[r.Key] = true
				s.bytes += r.Size - e.size
				e.sum, e.size = r.Sum, r.Size
				s.ll.MoveToFront(el)
				continue
			}
			e := &entry{key: r.Key, sum: r.Sum, size: r.Size}
			s.index[r.Key] = s.ll.PushFront(e)
			s.bytes += e.size
		case opAccess:
			if el, ok := s.index[r.Key]; ok {
				s.ll.MoveToFront(el)
			}
		case opDel:
			s.dropLocked(r.Key)
			delete(prev, r.Key)
			delete(updated, r.Key)
		}
	}
	return prev, updated
}

// compactJournal atomically rewrites the journal as one put record per
// live entry in LRU order (least recent first, so replay restores the
// order), bounding journal growth from access records and dead puts.
// The rewrite uses the real disk ops, never the fault hooks.
func (s *Store) compactJournal() error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for el := s.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if err := enc.Encode(record{Op: opPut, Key: e.key, Sum: e.sum, Size: e.size}); err != nil {
			return err
		}
	}
	tmp := filepath.Join(s.path("tmp"), "journal.compact")
	if err := WriteFileSync(tmp, buf.Bytes()); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.journalPath()); err != nil {
		return err
	}
	return syncDir(s.dir)
}
