package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// chromeEvent is one record of the Chrome trace-event format (the JSON
// "Trace Event Format" that chrome://tracing and Perfetto load). The
// exporter maps simulator cores to Chrome threads and the begin/end
// kernel phase pairs to duration events, so a domain switch renders as
// a nested span with its flush and padding inside it.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// spanPartner maps a begin kind to its end kind for the phase pairs
// that export as nested B/E duration events.
var spanPartner = map[Kind]Kind{
	DomainSwitchBegin:  DomainSwitchEnd,
	FlushBegin:         FlushEnd,
	ChannelSampleBegin: ChannelSampleEnd,
}

// WriteChrome writes the sink's retained events as Chrome trace-event
// JSON. cyclesPerMicro converts simulated cycles to trace microseconds
// (pass Platform.ClockHz/1e6; values <= 0 default to 1, leaving
// timestamps in raw cycles).
func (s *Sink) WriteChrome(w io.Writer, cyclesPerMicro float64) error {
	if cyclesPerMicro <= 0 {
		cyclesPerMicro = 1
	}
	events := s.Events()
	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(events)+len(s.rings)),
		DisplayTimeUnit: "ns",
	}
	for core := range s.rings {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 0, TID: core,
			Args: map[string]any{"name": fmt.Sprintf("core %d", core)},
		})
	}
	ts := func(cycles uint64) float64 { return float64(cycles) / cyclesPerMicro }
	for _, e := range events {
		ce := chromeEvent{
			Name:  e.Kind.String(),
			Cat:   e.Unit.String(),
			Phase: "i",
			TS:    ts(e.Time),
			PID:   0,
			TID:   int(e.Core),
			Args: map[string]any{
				"domain": int(e.Domain),
				"addr":   fmt.Sprintf("%#x", e.Addr),
				"arg":    e.Arg,
			},
		}
		switch e.Kind {
		case DomainSwitchBegin, FlushBegin, ChannelSampleBegin:
			ce.Phase = "B"
			ce.Name = spanName(e.Kind)
		case DomainSwitchEnd, FlushEnd, ChannelSampleEnd:
			ce.Phase = "E"
			ce.Name = spanName(e.Kind)
			if e.Kind == ChannelSampleEnd {
				ce.Args["value"] = math.Float64frombits(e.Arg)
				delete(ce.Args, "arg")
			}
		case Pad:
			// Padding is an interval by construction: it ends at the
			// event's own timestamp + the padded cycles.
			d := ts(e.Addr)
			ce.Phase = "X"
			ce.Dur = &d
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// spanName gives the begin/end pair of a phase one shared span name so
// trace viewers stack them as a single slice.
func spanName(k Kind) string {
	switch k {
	case DomainSwitchBegin, DomainSwitchEnd:
		return "domain-switch"
	case FlushBegin, FlushEnd:
		return "flush"
	case ChannelSampleBegin, ChannelSampleEnd:
		return "channel-sample"
	}
	return k.String()
}
