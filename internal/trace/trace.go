// Package trace is the simulator's observability layer: a structured
// event/counter subsystem threaded through every component that holds
// microarchitectural or kernel state. Components emit typed events
// (cache hit/miss/evict/write-back per level, TLB/BTB/BHB outcomes,
// prefetch issues, page walks, kernel switch phases, channel sample
// boundaries) into per-core ring buffers, and accumulate cheap
// monotonic per-unit counters that aggregate into a per-experiment
// cycle-accounting report.
//
// The layer is zero-overhead when disabled: every emitting component
// holds a *Sink that is nil by default, and each emission site is a
// single predictable `if sink != nil` branch. Recording consumes no
// simulated time — it is harness instrumentation, not machine work
// (the same convention as the kernel's own event ring).
//
// Event replay is the basis of trace-driven testing: properties like
// "after a domain switch with a full flush, no domain ever hits a line
// last touched by another domain" become direct assertions over the
// event stream instead of inferences from end-to-end MI numbers.
package trace

import "fmt"

// Kind classifies a trace event.
type Kind uint8

// Event kinds. Cache-like kinds carry the physical line address in
// Addr; kernel kinds carry phase-specific detail in Addr/Arg.
const (
	KindNone Kind = iota

	// Cache-level outcomes (Unit says which cache).
	CacheHit
	CacheMiss
	CacheEvict     // Addr = evicted line, Arg = 1 if dirty
	CacheWriteback // Addr = line written back
	CacheFlush     // Addr = valid lines dropped, Arg = dirty lines

	// Translation outcomes (Unit = ITLB/DTLB; an L2-TLB hit is a
	// first-level miss that the unified level absorbed).
	TLBHit
	TLBHitL2
	TLBMiss
	TLBFlush // Addr = entries dropped
	PageWalk // Addr = vpn, Arg = walk cycles

	// Predictor outcomes (Unit = BTB/BHB; Arg = penalty cycles).
	BranchHit
	BranchMiss

	// Prefetch issues (Unit = the cache level filled; Addr = line).
	PrefetchIssue

	// Memory-system outcomes.
	DRAMRowHit
	DRAMRowMiss
	BusStall // Arg = stall cycles

	// Kernel switch phases (§4.3 steps) and lifecycle.
	KernelTick         // Addr = current domain
	KernelSwitch       // Addr = from image ID, Arg = to image ID
	DomainSwitchBegin  // Addr = from domain, Arg = to domain
	DomainSwitchEnd    // Addr = switch cycles excl. padding, Arg = padded cycles since the scheduled preemption
	FlushBegin         // Addr = 0 targeted on-core, 1 full hierarchy
	FlushEnd           // Addr = flush cycles
	PrefetchShared     // Addr = lines touched
	Pad                // Addr = cycles padded
	KernelIRQ          // Addr = line
	KernelSyscall      // Addr = handler text offset
	KernelClone        // Addr = source image ID, Arg = new image ID
	KernelDestroy      // Addr = image ID
	ChannelSymbol      // Addr = symbol the sender encodes this slice
	ChannelSampleBegin // Addr = sender symbol under measurement
	ChannelSampleEnd   // Addr = sender symbol, Arg = math.Float64bits(value)

	numKinds
)

var kindNames = [numKinds]string{
	"none",
	"cache-hit", "cache-miss", "cache-evict", "cache-writeback", "cache-flush",
	"tlb-hit", "tlb-hit-l2", "tlb-miss", "tlb-flush", "page-walk",
	"branch-hit", "branch-miss",
	"prefetch-issue",
	"dram-row-hit", "dram-row-miss", "bus-stall",
	"kernel-tick", "kernel-switch", "domain-switch-begin", "domain-switch-end",
	"flush-begin", "flush-end", "prefetch-shared", "pad",
	"kernel-irq", "kernel-syscall", "kernel-clone", "kernel-destroy",
	"channel-symbol", "channel-sample-begin", "channel-sample-end",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Unit identifies the component an event or counter belongs to.
type Unit uint8

// Units, in metrics-report order.
const (
	UnitNone Unit = iota
	UnitL1D
	UnitL1I
	UnitL2
	UnitL3
	UnitITLB
	UnitDTLB
	UnitL2TLB
	UnitBTB
	UnitBHB
	UnitPrefetch
	UnitWalk
	UnitDRAM
	UnitBus
	UnitKernel
	UnitChannel

	NumUnits
)

var unitNames = [NumUnits]string{
	"-", "L1-D", "L1-I", "L2", "L3", "I-TLB", "D-TLB", "L2-TLB",
	"BTB", "BHB", "prefetch", "ptwalk", "DRAM", "bus", "kernel", "channel",
}

func (u Unit) String() string {
	if int(u) < len(unitNames) {
		return unitNames[u]
	}
	return fmt.Sprintf("unit(%d)", uint8(u))
}

// Event is one trace record. Time is the emitting core's cycle counter
// at the start of the operation; Domain is the security domain the core
// was executing when the event fired (kernel work on behalf of a domain
// is attributed to it, which is what makes cross-domain replay sound).
type Event struct {
	Time   uint64
	Addr   uint64 // kind-specific: line address, vpn, phase detail
	Arg    uint64 // kind-specific secondary detail
	Kind   Kind
	Unit   Unit
	Core   uint8
	Domain int16
}

func (e Event) String() string {
	return fmt.Sprintf("[%12d c%d d%d] %-19s %-8s addr=%#x arg=%d",
		e.Time, e.Core, e.Domain, e.Kind, e.Unit, e.Addr, e.Arg)
}

// UnitStats is the monotonic counter block of one component. Cycles is
// the simulated time attributed to the unit on the demand path;
// WritebackCycles separates the dirty-eviction cost the unit caused.
type UnitStats struct {
	Accesses        uint64
	Hits            uint64
	Misses          uint64
	Evictions       uint64
	Writebacks      uint64
	Flushes         uint64
	FlushedLines    uint64
	Issues          uint64 // prefetch issues, walk steps, pad spins …
	Cycles          uint64
	WritebackCycles uint64
}

// ring is one core's fixed-capacity event buffer.
type ring struct {
	buf     []Event
	next    int
	wrapped bool
	total   uint64
}

func (r *ring) record(e Event) {
	r.total++
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
}

func (r *ring) snapshot() []Event {
	var out []Event
	if r.wrapped {
		out = append(out, r.buf[r.next:]...)
	}
	return append(out, r.buf[:r.next]...)
}

// Sink collects events and counters for one simulated machine (or, for
// counters-only sinks, any number of sequentially built machines whose
// metrics should aggregate — the per-experiment report). A nil *Sink is
// the disabled state; emitting components guard every site with a nil
// check so the instrumentation costs one predicted branch when off.
//
// All methods are single-goroutine, like the simulator itself. Distinct
// experiments running concurrently must use distinct sinks.
type Sink struct {
	// Clock returns a core's current cycle counter; the machine layer
	// installs it on attach. Nil stamps events with zero time.
	Clock func(core int) uint64

	// OnEvent, when non-nil, observes every event as it is emitted —
	// before the ring records (and possibly later overwrites) it. Live
	// consumers (the session API's SSE stream) tap the sink here; the
	// hook runs on the simulating goroutine, so it must not block.
	OnEvent func(Event)

	// PadCount / PadCycles account the domain-switch padding spins
	// (Requirement 4), which belong to no component: time deliberately
	// burnt to make the switch cost secret-independent.
	PadCount  uint64
	PadCycles uint64

	ringCap int
	rings   []*ring
	domains []int16
	units   [NumUnits]UnitStats
}

// NewSink builds a sink whose per-core event rings hold ringCap events
// each. ringCap 0 disables event recording (counters still accumulate),
// which is the cheap configuration for metrics-only runs.
func NewSink(ringCap int) *Sink {
	if ringCap < 0 {
		ringCap = 0
	}
	return &Sink{ringCap: ringCap}
}

// EventsEnabled reports whether events are retained (ringCap > 0).
func (s *Sink) EventsEnabled() bool { return s != nil && s.ringCap > 0 }

// coreRing returns core's ring, growing the table on first sight of a
// new core index.
func (s *Sink) coreRing(core int) *ring {
	for core >= len(s.rings) {
		s.rings = append(s.rings, &ring{buf: make([]Event, s.ringCap)})
		s.domains = append(s.domains, 0)
	}
	return s.rings[core]
}

// SetDomain records the security domain now executing on core; later
// events from that core are stamped with it. The kernel calls this at
// dispatch, so kernel work during a switch is attributed to the domain
// it runs on behalf of.
func (s *Sink) SetDomain(core, domain int) {
	if s == nil {
		return
	}
	s.coreRing(core)
	s.domains[core] = int16(domain)
}

// Emit records one event. Callers must hold a non-nil sink (they guard
// emission sites with a nil check; Emit does not re-check).
func (s *Sink) Emit(core int, kind Kind, unit Unit, addr, arg uint64) {
	r := s.coreRing(core)
	var now uint64
	if s.Clock != nil {
		now = s.Clock(core)
	}
	e := Event{
		Time: now, Addr: addr, Arg: arg,
		Kind: kind, Unit: unit, Core: uint8(core), Domain: s.domains[core],
	}
	if s.OnEvent != nil {
		s.OnEvent(e)
	}
	r.record(e)
}

// Unit returns the counter block of one component for direct in-place
// increments from instrumentation sites.
func (s *Sink) Unit(u Unit) *UnitStats { return &s.units[u] }

// UnitSnapshot returns a copy of one component's counters.
func (s *Sink) UnitSnapshot(u Unit) UnitStats { return s.units[u] }

// Total returns the number of events ever emitted (including any that
// the rings have since overwritten).
func (s *Sink) Total() uint64 {
	var n uint64
	for _, r := range s.rings {
		n += r.total
	}
	return n
}

// CoreEvents returns the retained events of one core, oldest first.
func (s *Sink) CoreEvents(core int) []Event {
	if s == nil || core >= len(s.rings) {
		return nil
	}
	return s.rings[core].snapshot()
}

// Events returns the retained events of every core merged into one
// time-ordered stream (ties keep the lower core first, so single-core
// traces come back exactly as recorded).
func (s *Sink) Events() []Event {
	if s == nil {
		return nil
	}
	streams := make([][]Event, 0, len(s.rings))
	total := 0
	for i := range s.rings {
		ev := s.rings[i].snapshot()
		if len(ev) > 0 {
			streams = append(streams, ev)
			total += len(ev)
		}
	}
	out := make([]Event, 0, total)
	for len(streams) > 0 {
		best := 0
		for i := 1; i < len(streams); i++ {
			if streams[i][0].Time < streams[best][0].Time {
				best = i
			}
		}
		out = append(out, streams[best][0])
		streams[best] = streams[best][1:]
		if len(streams[best]) == 0 {
			streams = append(streams[:best], streams[best+1:]...)
		}
	}
	return out
}

// Count returns how many retained events match kind (any unit when
// unit is UnitNone).
func (s *Sink) Count(kind Kind, unit Unit) int {
	n := 0
	for _, r := range s.rings {
		for _, e := range r.snapshot() {
			if e.Kind == kind && (unit == UnitNone || e.Unit == unit) {
				n++
			}
		}
	}
	return n
}
