package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestNilSinkSafe(t *testing.T) {
	var s *Sink
	if s.EventsEnabled() {
		t.Fatal("nil sink reports events enabled")
	}
	s.SetDomain(0, 3) // must not panic
	if got := s.Events(); got != nil {
		t.Fatalf("nil sink Events() = %v, want nil", got)
	}
	if got := s.CoreEvents(0); got != nil {
		t.Fatalf("nil sink CoreEvents() = %v, want nil", got)
	}
	if got := s.MetricsReport(); got != "" {
		t.Fatalf("nil sink MetricsReport() = %q, want empty", got)
	}
	s.Merge(NewSink(0)) // must not panic
}

func TestCountersOnlySink(t *testing.T) {
	s := NewSink(0)
	if s.EventsEnabled() {
		t.Fatal("ringCap 0 sink reports events enabled")
	}
	s.Emit(0, CacheHit, UnitL1D, 0x40, 0)
	s.Unit(UnitL1D).Hits++
	if got := len(s.Events()); got != 0 {
		t.Fatalf("counters-only sink retained %d events, want 0", got)
	}
	if s.Total() != 1 {
		t.Fatalf("Total() = %d, want 1 (emission still counted)", s.Total())
	}
	if s.UnitSnapshot(UnitL1D).Hits != 1 {
		t.Fatal("counter increment lost")
	}
}

func TestRingWrap(t *testing.T) {
	s := NewSink(4)
	for i := 0; i < 10; i++ {
		s.Emit(0, CacheMiss, UnitL2, uint64(i), 0)
	}
	ev := s.CoreEvents(0)
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if want := uint64(6 + i); e.Addr != want {
			t.Fatalf("event %d addr = %d, want %d (oldest-first after wrap)", i, e.Addr, want)
		}
	}
	if s.Total() != 10 {
		t.Fatalf("Total() = %d, want 10", s.Total())
	}
}

func TestEventsMergeAcrossCores(t *testing.T) {
	s := NewSink(8)
	clock := map[int]uint64{0: 0, 1: 0}
	s.Clock = func(core int) uint64 { return clock[core] }

	clock[0] = 5
	s.Emit(0, CacheHit, UnitL1D, 1, 0)
	clock[1] = 3
	s.Emit(1, CacheHit, UnitL1D, 2, 0)
	clock[1] = 5 // tie with core 0's event: lower core wins
	s.Emit(1, CacheMiss, UnitL1D, 3, 0)
	clock[0] = 9
	s.Emit(0, CacheMiss, UnitL1D, 4, 0)

	ev := s.Events()
	wantAddrs := []uint64{2, 1, 3, 4}
	if len(ev) != len(wantAddrs) {
		t.Fatalf("got %d events, want %d", len(ev), len(wantAddrs))
	}
	for i, e := range ev {
		if e.Addr != wantAddrs[i] {
			t.Fatalf("merged order addrs = %v, want %v", addrs(ev), wantAddrs)
		}
	}
}

func addrs(ev []Event) []uint64 {
	out := make([]uint64, len(ev))
	for i, e := range ev {
		out[i] = e.Addr
	}
	return out
}

func TestDomainStamping(t *testing.T) {
	s := NewSink(8)
	s.SetDomain(0, 1)
	s.Emit(0, CacheHit, UnitL1D, 1, 0)
	s.SetDomain(0, 2)
	s.Emit(0, CacheHit, UnitL1D, 2, 0)
	ev := s.CoreEvents(0)
	if ev[0].Domain != 1 || ev[1].Domain != 2 {
		t.Fatalf("domains = %d,%d, want 1,2", ev[0].Domain, ev[1].Domain)
	}
}

func TestCount(t *testing.T) {
	s := NewSink(16)
	s.Emit(0, CacheMiss, UnitL1D, 1, 0)
	s.Emit(0, CacheMiss, UnitL2, 2, 0)
	s.Emit(1, CacheMiss, UnitL2, 3, 0)
	s.Emit(0, CacheHit, UnitL2, 4, 0)
	if got := s.Count(CacheMiss, UnitNone); got != 3 {
		t.Fatalf("Count(miss, any) = %d, want 3", got)
	}
	if got := s.Count(CacheMiss, UnitL2); got != 2 {
		t.Fatalf("Count(miss, L2) = %d, want 2", got)
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	s := NewSink(64)
	var now uint64
	s.Clock = func(core int) uint64 { return now }
	now = 100
	s.Emit(0, DomainSwitchBegin, UnitKernel, 0, 1)
	now = 150
	s.Emit(0, FlushBegin, UnitKernel, 1, 0)
	now = 400
	s.Emit(0, FlushEnd, UnitKernel, 250, 0)
	now = 420
	s.Emit(0, Pad, UnitKernel, 80, 0)
	now = 500
	s.Emit(0, DomainSwitchEnd, UnitKernel, 400, 0)
	now = 600
	s.Emit(0, ChannelSampleBegin, UnitChannel, 7, 0)
	now = 900
	s.Emit(0, ChannelSampleEnd, UnitChannel, 7, math.Float64bits(12.5))
	now = 950
	s.Emit(0, CacheMiss, UnitL1D, 0x1000, 0)

	var buf bytes.Buffer
	if err := s.WriteChrome(&buf, 2.0); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var tr struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   *float64       `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}
	phases := map[string]int{}
	var sampleValue float64
	var padDur *float64
	for _, e := range tr.TraceEvents {
		phases[e.Phase]++
		if e.Name == "channel-sample" && e.Phase == "E" {
			sampleValue, _ = e.Args["value"].(float64)
		}
		if e.Name == "pad" {
			padDur = e.Dur
		}
	}
	if phases["M"] != 1 {
		t.Fatalf("want 1 thread_name metadata event, got %d", phases["M"])
	}
	if phases["B"] != 3 || phases["E"] != 3 {
		t.Fatalf("want 3 B and 3 E span events, got B=%d E=%d", phases["B"], phases["E"])
	}
	if phases["i"] != 1 {
		t.Fatalf("want 1 instant event (the cache miss), got %d", phases["i"])
	}
	if sampleValue != 12.5 {
		t.Fatalf("sample end value = %v, want 12.5", sampleValue)
	}
	if padDur == nil || *padDur != 40 { // 80 cycles at 2 cycles/µs
		t.Fatalf("pad dur = %v, want 40µs", padDur)
	}
}

func TestMetricsReport(t *testing.T) {
	s := NewSink(0)
	l1 := s.Unit(UnitL1D)
	l1.Accesses, l1.Hits, l1.Misses, l1.Cycles = 100, 90, 10, 400
	l2 := s.Unit(UnitL2)
	l2.Accesses, l2.Hits, l2.Misses, l2.Cycles = 10, 4, 6, 120
	s.PadCount, s.PadCycles = 3, 480

	rep := s.MetricsReport()
	for _, want := range []string{"L1-D", "L2", "pad", "total", "90.0", "1000"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	if strings.Contains(rep, "L3") {
		t.Fatalf("inactive unit rendered:\n%s", rep)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewSink(0), NewSink(0)
	a.Unit(UnitL2).Misses = 5
	b.Unit(UnitL2).Misses = 7
	b.PadCount, b.PadCycles = 1, 100
	a.Merge(b)
	if a.UnitSnapshot(UnitL2).Misses != 12 {
		t.Fatalf("merged misses = %d, want 12", a.UnitSnapshot(UnitL2).Misses)
	}
	if a.PadCount != 1 || a.PadCycles != 100 {
		t.Fatal("pad counters not merged")
	}
}

func TestCrossDomainHits(t *testing.T) {
	mk := func(kind Kind, unit Unit, core uint8, domain int16, addr uint64) Event {
		return Event{Kind: kind, Unit: unit, Core: core, Domain: domain, Addr: addr}
	}
	shared := map[Unit]bool{UnitL3: true}

	events := []Event{
		mk(CacheMiss, UnitL3, 0, 0, 0x100), // domain 0 brings the line in
		mk(CacheHit, UnitL3, 1, 1, 0x100),  // domain 1 hits it: cross-domain
		mk(CacheHit, UnitL3, 1, 1, 0x100),  // second hit: now same-domain
	}
	hits := CrossDomainHits(events, shared, nil)
	if len(hits) != 1 || hits[0].PrevDomain != 0 || hits[0].Event.Domain != 1 {
		t.Fatalf("cross-domain hits = %+v, want one d0→d1 hit", hits)
	}

	// A flush between touch and hit clears the history.
	events = []Event{
		mk(CacheMiss, UnitL3, 0, 0, 0x100),
		mk(CacheFlush, UnitL3, 0, 0, 1),
		mk(CacheHit, UnitL3, 1, 1, 0x100),
	}
	if hits := CrossDomainHits(events, shared, nil); len(hits) != 0 {
		t.Fatalf("flush did not clear line history: %+v", hits)
	}

	// Private units key by core: same address on different cores is
	// different state, so no cross-domain hit.
	events = []Event{
		mk(CacheMiss, UnitL1D, 0, 0, 0x100),
		mk(CacheHit, UnitL1D, 1, 1, 0x100),
	}
	if hits := CrossDomainHits(events, nil, nil); len(hits) != 0 {
		t.Fatalf("private unit treated as shared: %+v", hits)
	}

	// Eviction removes history too.
	events = []Event{
		mk(CacheMiss, UnitL3, 0, 0, 0x100),
		mk(CacheEvict, UnitL3, 0, 0, 0x100),
		mk(CacheHit, UnitL3, 1, 1, 0x100),
	}
	if hits := CrossDomainHits(events, shared, nil); len(hits) != 0 {
		t.Fatalf("evict did not clear line history: %+v", hits)
	}

	// The filter suppresses reporting but not tracking.
	events = []Event{
		mk(CacheMiss, UnitL3, 0, 0, 0x100),
		mk(CacheHit, UnitL3, 1, 1, 0x100),
	}
	none := func(addr uint64) bool { return false }
	if hits := CrossDomainHits(events, shared, none); len(hits) != 0 {
		t.Fatalf("filter ignored: %+v", hits)
	}
}

func TestSampleWindows(t *testing.T) {
	events := []Event{
		{Kind: CacheMiss, Unit: UnitL2, Addr: 0x40},
		{Kind: ChannelSampleBegin, Unit: UnitChannel, Addr: 3},
		{Kind: CacheMiss, Unit: UnitL2, Addr: 0x80},
		{Kind: CacheMiss, Unit: UnitL1D, Addr: 0xc0},
		{Kind: ChannelSampleEnd, Unit: UnitChannel, Addr: 3, Arg: math.Float64bits(42)},
		{Kind: ChannelSampleBegin, Unit: UnitChannel, Addr: 5},
		{Kind: CacheMiss, Unit: UnitL2, Addr: 0x100},
	}
	ws := SampleWindows(events)
	if len(ws) != 1 {
		t.Fatalf("got %d windows, want 1 (trailing unterminated dropped)", len(ws))
	}
	w := ws[0]
	if w.Symbol != 3 || w.Value != 42 {
		t.Fatalf("window = symbol %d value %v, want 3/42", w.Symbol, w.Value)
	}
	if got := w.MissCount(UnitL2, nil); got != 1 {
		t.Fatalf("L2 misses in window = %d, want 1", got)
	}
	inRange := func(addr uint64) bool { return addr >= 0x80 && addr < 0x100 }
	if got := w.MissCount(UnitL2, inRange); got != 1 {
		t.Fatalf("filtered L2 misses = %d, want 1", got)
	}

	means := SymbolMeans(ws, func(w SampleWindow) float64 { return w.Value })
	if means[3] != 42 {
		t.Fatalf("SymbolMeans = %v", means)
	}
}

func TestPhaseSpans(t *testing.T) {
	events := []Event{
		{Kind: DomainSwitchBegin, Core: 0, Time: 100},
		{Kind: DomainSwitchBegin, Core: 1, Time: 150},
		{Kind: DomainSwitchEnd, Core: 0, Time: 600},
		{Kind: DomainSwitchEnd, Core: 1, Time: 650},
		{Kind: DomainSwitchBegin, Core: 0, Time: 1000}, // unterminated
	}
	spans := PhaseSpans(events, DomainSwitchBegin)
	if len(spans) != 2 || spans[0] != 500 || spans[1] != 500 {
		t.Fatalf("spans = %v, want [500 500]", spans)
	}
	if got := PhaseSpans(events, CacheHit); got != nil {
		t.Fatalf("non-span kind returned %v", got)
	}
}
