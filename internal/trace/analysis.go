package trace

import "math"

// This file contains replay analyses over event streams — the
// primitives trace-driven tests assert on. They treat the stream as
// ground truth about what the simulated hardware did, so properties the
// MI toolchain can only infer statistically ("colouring keeps domains
// apart", "a full flush leaves nothing to hit") become exact counts.

// CrossDomainHit describes one cache hit by a domain on a line whose
// previous toucher was a different domain — the structural signature of
// shared microarchitectural state, and exactly what time protection's
// flush/partition mechanisms are meant to eliminate.
type CrossDomainHit struct {
	Event      Event
	PrevDomain int16
}

// CrossDomainHits replays cache events and returns every hit on a line
// last touched by a different domain. Lines are keyed per unit and per
// core for core-private levels; pass sharedUnits for the levels all
// cores share (the LLC) so cross-core traffic is tracked against one
// line table. A CacheFlush event clears the unit's table (flushed lines
// cannot be hit, so any later hit re-derives from a post-flush touch).
// Events whose address fails the filter (when non-nil) still update the
// line tables but are not reported — use the filter to scope the
// verdict to user memory while kernel-shared lines keep their true
// toucher history.
func CrossDomainHits(events []Event, sharedUnits map[Unit]bool, filter func(addr uint64) bool) []CrossDomainHit {
	type lineKey struct {
		unit Unit
		core uint8
		addr uint64
	}
	last := make(map[lineKey]int16)
	var out []CrossDomainHit
	key := func(e Event) lineKey {
		k := lineKey{unit: e.Unit, addr: e.Addr}
		if !sharedUnits[e.Unit] {
			k.core = e.Core
		}
		return k
	}
	for _, e := range events {
		switch e.Kind {
		case CacheHit:
			k := key(e)
			if prev, ok := last[k]; ok && prev != e.Domain {
				if filter == nil || filter(e.Addr) {
					out = append(out, CrossDomainHit{Event: e, PrevDomain: prev})
				}
			}
			last[k] = e.Domain
		case CacheMiss, CacheWriteback, PrefetchIssue:
			// All three install the line: a miss fills it on demand, a
			// write-back installs it one level down, a prefetch pulls it
			// in speculatively. Each makes the line hittable by whoever
			// runs next, so each counts as a touch.
			last[key(e)] = e.Domain
		case CacheEvict:
			delete(last, key(e))
		case CacheFlush:
			for k := range last {
				if k.unit == e.Unit && (sharedUnits[e.Unit] || k.core == e.Core) {
					delete(last, k)
				}
			}
		}
	}
	return out
}

// TouchedSets returns the set indices touched by cache events of one
// unit, restricted to events matching the domain and the address filter
// (nil = all). setOf maps a physical line address to its set index —
// pass the cache's SetOf.
func TouchedSets(events []Event, unit Unit, domain int, filter func(addr uint64) bool, setOf func(addr uint64) int) map[int]bool {
	sets := make(map[int]bool)
	for _, e := range events {
		if e.Unit != unit || int(e.Domain) != domain {
			continue
		}
		switch e.Kind {
		case CacheHit, CacheMiss, CacheEvict:
			if filter == nil || filter(e.Addr) {
				sets[setOf(e.Addr)] = true
			}
		}
	}
	return sets
}

// SampleWindow is one channel measurement window cut from the stream:
// the events between a ChannelSampleBegin/End pair, with the sender
// symbol under measurement and the receiver's measured value.
type SampleWindow struct {
	Symbol int
	Value  float64
	Events []Event
}

// SampleWindows slices the stream into channel measurement windows.
// Nested windows do not occur (one receiver measures at a time); an
// unterminated trailing window is dropped.
func SampleWindows(events []Event) []SampleWindow {
	var out []SampleWindow
	var cur *SampleWindow
	for _, e := range events {
		switch e.Kind {
		case ChannelSampleBegin:
			cur = &SampleWindow{Symbol: int(e.Addr)}
		case ChannelSampleEnd:
			if cur != nil {
				cur.Value = math.Float64frombits(e.Arg)
				out = append(out, *cur)
				cur = nil
			}
		default:
			if cur != nil {
				cur.Events = append(cur.Events, e)
			}
		}
	}
	return out
}

// MissCount counts CacheMiss events of one unit within a window that
// pass the address filter (nil = all).
func (w SampleWindow) MissCount(unit Unit, filter func(addr uint64) bool) int {
	n := 0
	for _, e := range w.Events {
		if e.Kind == CacheMiss && e.Unit == unit && (filter == nil || filter(e.Addr)) {
			n++
		}
	}
	return n
}

// SymbolMeans groups per-window values by sender symbol and returns the
// mean of vals for each symbol present (map symbol → mean).
func SymbolMeans(windows []SampleWindow, val func(SampleWindow) float64) map[int]float64 {
	sum := make(map[int]float64)
	n := make(map[int]int)
	for _, w := range windows {
		sum[w.Symbol] += val(w)
		n[w.Symbol]++
	}
	out := make(map[int]float64, len(sum))
	for s, t := range sum {
		out[s] = t / float64(n[s])
	}
	return out
}

// PhaseSpans pairs begin/end phase events per core and returns the
// cycle duration of each completed span of the given begin kind, in
// stream order. Used to assert padded domain-switch durations are
// constant.
func PhaseSpans(events []Event, begin Kind) []uint64 {
	end, ok := spanPartner[begin]
	if !ok {
		return nil
	}
	open := map[uint8]uint64{}
	var out []uint64
	for _, e := range events {
		switch e.Kind {
		case begin:
			open[e.Core] = e.Time
		case end:
			if t0, ok := open[e.Core]; ok {
				out = append(out, e.Time-t0)
				delete(open, e.Core)
			}
		}
	}
	return out
}
