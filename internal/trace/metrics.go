package trace

import (
	"fmt"
	"strings"
)

// reportUnits is the row order of the metrics report; units with no
// recorded activity are omitted.
var reportUnits = []Unit{
	UnitL1D, UnitL1I, UnitL2, UnitL3,
	UnitITLB, UnitDTLB, UnitL2TLB,
	UnitBTB, UnitBHB, UnitPrefetch, UnitWalk,
	UnitDRAM, UnitBus, UnitKernel,
}

// MetricsReport renders the per-component cycle accounting table: for
// every active unit, demand accesses, hit ratio, evictions/write-backs,
// and the simulated cycles attributed to it — the "where did the cycles
// go" companion to an experiment's MI verdict.
func (s *Sink) MetricsReport() string {
	if s == nil {
		return ""
	}
	totalCycles := s.PadCycles
	for _, u := range reportUnits {
		if u == UnitWalk {
			// Walk cycles are PTE loads already charged to the cache
			// units they traverse — the row is a breakdown, not a new
			// cost, so it stays out of the total.
			continue
		}
		st := &s.units[u]
		totalCycles += st.Cycles + st.WritebackCycles
	}
	var b strings.Builder
	b.WriteString("Component metrics (demand-path cycle accounting):\n")
	fmt.Fprintf(&b, "  %-9s %12s %12s %7s %10s %10s %14s %7s\n",
		"unit", "accesses", "misses", "hit%", "evicts", "wbacks", "cycles", "cyc%")
	line := strings.Repeat("-", 89)
	fmt.Fprintf(&b, "  %s\n", line)
	for _, u := range reportUnits {
		st := &s.units[u]
		cycles := st.Cycles + st.WritebackCycles
		if st.Accesses == 0 && cycles == 0 && st.Issues == 0 && st.Flushes == 0 {
			continue
		}
		hitPct := "-"
		if st.Accesses > 0 {
			hitPct = fmt.Sprintf("%.1f", 100*float64(st.Hits)/float64(st.Accesses))
		}
		cycPct := "-"
		if totalCycles > 0 && u != UnitWalk {
			cycPct = fmt.Sprintf("%.1f", 100*float64(cycles)/float64(totalCycles))
		}
		accesses := st.Accesses
		if accesses == 0 {
			accesses = st.Issues
		}
		fmt.Fprintf(&b, "  %-9s %12d %12d %7s %10d %10d %14d %7s\n",
			u, accesses, st.Misses, hitPct, st.Evictions, st.Writebacks, cycles, cycPct)
	}
	if s.PadCount > 0 {
		cycPct := "-"
		if totalCycles > 0 {
			cycPct = fmt.Sprintf("%.1f", 100*float64(s.PadCycles)/float64(totalCycles))
		}
		fmt.Fprintf(&b, "  %-9s %12d %12s %7s %10s %10s %14d %7s\n",
			"pad", s.PadCount, "-", "-", "-", "-", s.PadCycles, cycPct)
	}
	fmt.Fprintf(&b, "  %s\n", line)
	fmt.Fprintf(&b, "  %-9s %12s %12s %7s %10s %10s %14d %7s\n",
		"total", "", "", "", "", "", totalCycles, "100.0")
	return b.String()
}

// Merge adds other's counters into s (event rings are not merged).
// Experiment drivers that build several systems per artefact attach one
// sink to all of them, so Merge exists for callers that instead collect
// per-system sinks and want one aggregate report.
func (s *Sink) Merge(other *Sink) {
	if s == nil || other == nil {
		return
	}
	s.PadCount += other.PadCount
	s.PadCycles += other.PadCycles
	for u := range s.units {
		a, b := &s.units[u], &other.units[u]
		a.Accesses += b.Accesses
		a.Hits += b.Hits
		a.Misses += b.Misses
		a.Evictions += b.Evictions
		a.Writebacks += b.Writebacks
		a.Flushes += b.Flushes
		a.FlushedLines += b.FlushedLines
		a.Issues += b.Issues
		a.Cycles += b.Cycles
		a.WritebackCycles += b.WritebackCycles
	}
}
