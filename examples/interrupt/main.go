// Interrupt partitioning (paper §5.3.5): a trojan programs a timer to
// fire a secret-dependent fraction into the spy's time slice; the spy
// senses the interruption as a gap in its own progress. Kernel_SetInt
// binds the interrupt line to the trojan's kernel image, so delivery is
// deferred to the trojan's own slices and the channel closes.
//
// Run: go run ./examples/interrupt
package main

import (
	"fmt"
	"log"

	"timeprotection/pkg/timeprot"
)

func main() {
	plat := timeprot.Haswell()

	for _, partitioned := range []bool{false, true} {
		ds, err := timeprot.MeasureInterruptChannel(partitioned,
			timeprot.WithPlatform(plat),
			timeprot.WithProtection(),
			timeprot.WithSamples(150))
		if err != nil {
			log.Fatal(err)
		}
		r := timeprot.Analyze(ds, 1)
		label := "IRQ unpartitioned     "
		if partitioned {
			label = "IRQ bound to its image"
		}
		fmt.Printf("%s: %v\n", label, r)
		if !partitioned {
			fmt.Println("  spy's first-online time by trojan timer setting:")
			for _, in := range ds.Inputs() {
				outs := ds.OutputsFor(in)
				sum := 0.0
				for _, o := range outs {
					sum += o
				}
				fmt.Printf("    timer at %d%% of slice -> %.0f cycles\n", 30+10*in, sum/float64(len(outs)))
			}
		}
	}
	fmt.Println("\nKernel_SetInt defers foreign-domain interrupts to their own slices,")
	fmt.Println("so the spy's time slice is never split (Requirement 5).")
}
