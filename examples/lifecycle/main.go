// Lifecycle (paper §3.3/§4.4): the dynamic side of time protection.
// The initial process partitions the machine, a domain sub-divides
// itself with a nested kernel clone, a colour is moved between
// partitions, and finally a whole clone subtree is revoked — with the
// boot kernel's idle-thread invariant keeping the system alive
// throughout.
//
// Run: go run ./examples/lifecycle
package main

import (
	"fmt"
	"log"

	"timeprotection/pkg/timeprot"
)

func main() {
	plat := timeprot.Haswell()
	k, err := timeprot.Boot(
		timeprot.WithPlatform(plat),
		timeprot.WithProtection(),
		timeprot.WithKernelCloning(),
		timeprot.WithTrace(256))
	if err != nil {
		log.Fatal(err)
	}
	nCol := plat.Colours()
	fmt.Printf("booted %s: %d page colours, boot image #%d\n\n", plat.Name, nCol, k.BootImage().ID)

	// The init process splits free memory into two coloured pools and
	// clones a kernel into each (the §3.3 recipe).
	split := timeprot.SplitColours(nCol, 2)
	pools := []*timeprot.Pool{
		timeprot.NewPool(k.M.Alloc, split[0]),
		timeprot.NewPool(k.M.Alloc, split[1]),
	}
	var images []*timeprot.Image
	for i, pool := range pools {
		km, err := k.NewKernelMemory(pool)
		if err != nil {
			log.Fatal(err)
		}
		img, err := k.Clone(0, k.BootImage(), km)
		if err != nil {
			log.Fatal(err)
		}
		images = append(images, img)
		fmt.Printf("domain %d: colours %v -> kernel image #%d (clone cost %.1f us)\n",
			i, pool.Colours(), img.ID, plat.CyclesToMicros(k.Metrics.LastCloneCycles))
	}

	// Domain 0 sub-divides: nested partitioning from its image.
	subPools, err := pools[0].Subdivide(2)
	if err != nil {
		log.Fatal(err)
	}
	kmN, err := k.NewKernelMemory(subPools[1])
	if err != nil {
		log.Fatal(err)
	}
	nested, err := k.Clone(0, images[0], kmN)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndomain 0 sub-divides: colours %v + %v, nested kernel image #%d (parent #%d)\n",
		subPools[0].Colours(), subPools[1].Colours(), nested.ID, nested.Parent().ID)

	// Re-partitioning: domain 1 cedes a colour to domain 0's first
	// sub-partition.
	moved := pools[1].Colours()[0]
	if err := pools[1].TransferColour(moved, subPools[0]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-partition: colour %d moves from domain 1 -> domain 0a (now %v)\n",
		moved, subPools[0].Colours())

	// Revoke domain 0's master image: the nested clone dies with it.
	if err := k.RevokeImage(0, images[0]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrevoke image #%d: subtree destroyed -> #%d zombie=%v, #%d zombie=%v\n",
		images[0].ID, images[0].ID, images[0].Zombie(), nested.ID, nested.Zombie())
	fmt.Printf("boot image #%d alive: %v (idle-thread invariant)\n",
		k.BootImage().ID, !k.BootImage().Zombie())

	// The system keeps acknowledging ticks on the boot kernel.
	k.RunCore(0, k.M.Cores[0].Now+4*k.Timeslice())
	fmt.Printf("\nafter revocation the machine still runs: %d ticks handled\n", k.Metrics.Ticks)
	fmt.Println("\nkernel trace (lifecycle events):")
	for _, e := range k.Trace.Snapshot() {
		if e.Kind == timeprot.EvClone || e.Kind == timeprot.EvDestroy {
			fmt.Printf("  %v\n", e)
		}
	}
}
