// Cloud (paper §3.1.2): two mutually distrusting "VMs" run concurrently
// on different cores of the same machine. The victim VM decrypts ElGamal
// ciphertexts with square-and-multiply; the attacker VM mounts the Liu
// et al. cross-core prime&probe attack on the shared last-level cache
// and recovers the secret exponent from the intervals between square
// invocations (paper Figure 4). Partitioning the LLC by page colouring
// leaves the spy blind.
//
// Run: go run ./examples/cloud
package main

import (
	"fmt"
	"log"

	"timeprotection/pkg/timeprot"
)

func main() {
	plat := timeprot.Haswell()
	fmt.Println("victim VM on core 0 decrypts; spy VM on core 1 probes the LLC")

	for _, sc := range []timeprot.Scenario{timeprot.ScenarioRaw, timeprot.ScenarioProtected} {
		r, err := timeprot.MeasureLLCAttack(
			timeprot.WithPlatform(plat),
			timeprot.WithScenario(sc),
			timeprot.WithSamples(150))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n", sc)
		fmt.Printf("  eviction set built: %d ways\n", r.EvictionWays)
		fmt.Printf("  slots with victim activity: %d of %d\n", r.ActiveSlots, len(r.Trace))
		fmt.Printf("  secret key bits: %d; recovered: %d; accuracy: %.1f%%\n",
			len(r.TrueBits), len(r.Recovered), r.Accuracy*100)
		if r.Accuracy > 0.9 {
			fmt.Println("  -> the spy reads the key out of the cache")
		} else if r.ActiveSlots == 0 {
			fmt.Println("  -> the coloured LLC gives the spy nothing to observe")
		}
	}
}
