// Quickstart: partition a simulated machine into two security domains
// with time protection and watch a cache covert channel close.
//
// The sender encodes a secret-dependent footprint in the L1-D cache;
// the receiver measures its own probe latency. Without time protection
// the mutual information between them is large; with cloned, coloured
// kernels and on-core flushing it drops below the zero-leakage bound.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"timeprotection/internal/channel"
	"timeprotection/internal/hw"
	"timeprotection/internal/kernel"
	"timeprotection/internal/mi"
)

func main() {
	plat := hw.Haswell()
	fmt.Printf("platform: %s (%d page colours)\n\n", plat.Name, plat.Colours())

	for _, sc := range []kernel.Scenario{kernel.ScenarioRaw, kernel.ScenarioProtected} {
		ds, err := channel.RunIntraCore(channel.Spec{
			Platform: plat,
			Scenario: sc,
			Samples:  150,
		}, channel.L1D)
		if err != nil {
			log.Fatal(err)
		}
		r := mi.Analyze(ds, rand.New(rand.NewSource(1)))
		fmt.Printf("L1-D covert channel, %-10s: %v\n", sc, r)
		if r.Leak() {
			fmt.Println("  -> the sender's cache footprint is visible to the receiver")
		} else {
			fmt.Println("  -> the observations are consistent with zero leakage")
		}
	}

	fmt.Println("\nTime protection = cloned per-domain kernels + page colouring +")
	fmt.Println("on-core state flushing + deterministic shared-data access + padding.")
}
