// Quickstart: partition a simulated machine into two security domains
// with time protection and watch a cache covert channel close.
//
// The sender encodes a secret-dependent footprint in the L1-D cache;
// the receiver measures its own probe latency. Without time protection
// the mutual information between them is large; with cloned, coloured
// kernels and on-core flushing it drops below the zero-leakage bound.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"timeprotection/pkg/timeprot"
)

func main() {
	plat := timeprot.Haswell()
	fmt.Printf("platform: %s (%d page colours)\n\n", plat.Name, plat.Colours())

	for _, sc := range []timeprot.Scenario{timeprot.ScenarioRaw, timeprot.ScenarioProtected} {
		ds, err := timeprot.MeasureChannel(timeprot.L1D,
			timeprot.WithPlatform(plat),
			timeprot.WithScenario(sc),
			timeprot.WithSamples(150))
		if err != nil {
			log.Fatal(err)
		}
		r := timeprot.Analyze(ds, 1)
		fmt.Printf("L1-D covert channel, %-10s: %v\n", sc, r)
		if r.Leak() {
			fmt.Println("  -> the sender's cache footprint is visible to the receiver")
		} else {
			fmt.Println("  -> the observations are consistent with zero leakage")
		}
	}

	fmt.Println("\nTime protection = cloned per-domain kernels + page colouring +")
	fmt.Println("on-core state flushing + deterministic shared-data access + padding.")
}
