// Confinement (paper §3.1.1): a Trojan is confined to its own security
// domain, connected to the rest of the system only by an explicit IPC
// endpoint. The demo shows that
//
//  1. the overt IPC channel keeps working under time protection, and
//  2. the covert kernel channel the Trojan would use to exfiltrate
//     (modulating which system calls it makes, observed by a spy through
//     the kernel's cache footprint) is closed by kernel cloning.
//
// Run: go run ./examples/confinement
package main

import (
	"fmt"
	"log"

	"timeprotection/pkg/timeprot"
)

func main() {
	plat := timeprot.Haswell()

	// Part 1: overt communication still works in a partitioned system.
	sys, err := timeprot.NewSystem(
		timeprot.WithPlatform(plat),
		timeprot.WithProtection(),
		timeprot.WithDomains(2))
	if err != nil {
		log.Fatal(err)
	}
	cSlot, sSlot, err := sys.NewEndpointPair(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	requests, replies := 0, 0
	started := false
	server := timeprot.ProgramFunc(func(e *timeprot.Env) bool {
		if !started {
			started = true
			e.Recv(sSlot)
			return true
		}
		replies++
		e.ReplyRecv(sSlot)
		return true
	})
	trojan := timeprot.ProgramFunc(func(e *timeprot.Env) bool {
		if requests >= 8 {
			return false
		}
		requests++
		e.Call(cSlot)
		return true
	})
	if _, err := sys.Spawn(1, "service", 20, server); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Spawn(0, "trojan", 10, trojan); err != nil {
		log.Fatal(err)
	}
	sys.RunCoreFor(0, 40*sys.Timeslice())
	fmt.Printf("overt IPC channel under time protection: %d requests, %d replies served\n", requests, replies)

	// Part 2: the covert channel through the shared kernel is closed.
	for _, sc := range []timeprot.Scenario{timeprot.ScenarioRaw, timeprot.ScenarioProtected} {
		ds, err := timeprot.MeasureKernelChannel(
			timeprot.WithPlatform(plat),
			timeprot.WithScenario(sc),
			timeprot.WithSamples(150))
		if err != nil {
			log.Fatal(err)
		}
		r := timeprot.Analyze(ds, 1)
		fmt.Printf("covert kernel channel, %-10s: %v\n", sc, r)
	}
	fmt.Println("\nConfinement holds: the Trojan can talk through its authorised")
	fmt.Println("endpoint but no longer through the kernel's cache footprint.")
}
