#!/bin/sh
# bench.sh — run the Benchmark* suite and record the perf trajectory.
#
# Runs every benchmark with -benchmem, writes the results to
# BENCH_<date>.json (benchmark name -> ns/op, B/op, allocs/op) in the
# repo root, and prints a per-benchmark delta against the most recent
# previous snapshot.
#
# After recording, the regression gate compares every benchmark present
# in both snapshots and fails (exit 1) when ns/op, B/op or allocs/op
# regressed by more than the threshold. The fresh snapshot is written
# either way, so a failing run still records the trajectory.
#
# Environment:
#   BENCHTIME       go test -benchtime value (default 1s; use e.g. 1x
#                   for a quick single-iteration pass)
#   BENCH           benchmark name regex (default '.')
#   BENCH_GATE      set to 0 to skip the regression gate (e.g. when the
#                   previous snapshot came from different hardware)
#   BENCH_GATE_PCT  regression threshold in percent (default 15)
#   BENCH_GATE_METRICS
#                   space-separated metrics the gate prices (default
#                   "ns_op b_op allocs_op"; CI uses "b_op allocs_op" —
#                   allocation counts are hardware-independent, ns/op
#                   against a snapshot from other hardware is noise).
#                   A benchmark whose baseline is allocation-free fails
#                   the gate on ANY new allocation, threshold aside.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
BENCH="${BENCH:-.}"
today="BENCH_$(date +%F).json"

prev=""
for f in $(ls BENCH_*.json 2>/dev/null | sort); do
	[ "$f" = "$today" ] && continue
	prev="$f"
done

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "running benchmarks (benchtime $BENCHTIME)..." >&2
go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" ./... | tee "$raw" >&2

# Benchmark output lines: name, iterations, then value/unit pairs
# (ns/op, B/op, allocs/op, plus any custom metrics, which we skip).
awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
	ns = b = al = ""
	for (i = 3; i + 1 <= NF; i += 2) {
		if ($(i+1) == "ns/op") ns = $i
		else if ($(i+1) == "B/op") b = $i
		else if ($(i+1) == "allocs/op") al = $i
	}
	if (ns != "") {
		row = sprintf("  \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", \
			name, ns, (b == "" ? 0 : b), (al == "" ? 0 : al))
		rows[++n] = row
	}
}
END {
	print "{"
	for (i = 1; i <= n; i++) print rows[i] (i < n ? "," : "")
	print "}"
}
' "$raw" > "$today"
echo "wrote $today" >&2

if [ -n "$prev" ]; then
	echo ""
	echo "delta vs $prev (ns/op):"
	awk -F'"' '
	/ns_op/ {
		name = $2
		val = $0
		sub(/.*"ns_op": /, "", val)
		sub(/[,}].*/, "", val)
		if (FILENAME == ARGV[1]) old[name] = val
		else if (name in old && old[name] + 0 > 0) {
			printf "  %-55s %14.0f -> %14.0f  (%+.1f%%)\n", \
				name, old[name], val, (val - old[name]) / old[name] * 100
		} else {
			printf "  %-55s %14s -> %14.0f  (new)\n", name, "-", val
		}
	}
	' "$prev" "$today"

	if [ "${BENCH_GATE:-1}" != "0" ]; then
		echo ""
		echo "regression gate vs $prev (threshold ${BENCH_GATE_PCT:-15}%, metrics ${BENCH_GATE_METRICS:-ns_op b_op allocs_op}):"
		awk -F'"' -v pct="${BENCH_GATE_PCT:-15}" -v metrics="${BENCH_GATE_METRICS:-ns_op b_op allocs_op}" '
		function metric(line, key,   v) {
			v = line
			if (!sub(".*\"" key "\": ", "", v)) return ""
			sub(/[,}].*/, "", v)
			return v
		}
		/ns_op/ {
			name = $2
			if (FILENAME == ARGV[1]) {
				ns[name] = metric($0, "ns_op")
				b[name] = metric($0, "b_op")
				al[name] = metric($0, "allocs_op")
				next
			}
			if (!(name in ns)) next
			nk = split(metrics, keys, " ")
			for (i = 1; i <= nk; i++) {
				old[i] = keys[i] == "ns_op" ? ns[name] : keys[i] == "b_op" ? b[name] : al[name]
				new = metric($0, keys[i])
				if (old[i] + 0 <= 0 || new == "") {
					# A percentage gate cannot price a zero baseline, but
					# a benchmark recorded allocation-free must stay so —
					# that is the hot-path invariant the smoke run guards.
					if (keys[i] != "ns_op" && old[i] != "" && old[i] + 0 == 0 && new + 0 > 0) {
						printf "  FAIL %-50s %s %14s -> %14s  (was allocation-free)\n", \
							name, keys[i], old[i], new
						bad++
					}
					continue
				}
				delta = (new - old[i]) / old[i] * 100
				# Sub-100ns/op benchmarks sit at timer resolution; a
				# relative gate there measures noise, not regressions.
				if (keys[i] == "ns_op" && old[i] + 0 < 100) continue
				if (delta > pct + 0) {
					printf "  FAIL %-50s %s %14s -> %14s  (+%.1f%% > %s%%)\n", \
						name, keys[i], old[i], new, delta, pct
					bad++
				}
			}
		}
		END {
			if (bad) { printf "  %d regression(s)\n", bad; exit 1 }
			print "  clean"
		}
		' "$prev" "$today" || exit 1
	fi
else
	echo "no previous snapshot; $today is the baseline." >&2
fi
