#!/bin/sh
# bench.sh — run the Benchmark* suite and record the perf trajectory.
#
# Runs every benchmark with -benchmem, writes the results to
# BENCH_<date>.json (benchmark name -> ns/op, B/op, allocs/op) in the
# repo root, and prints a per-benchmark delta against the most recent
# previous snapshot.
#
# Environment:
#   BENCHTIME  go test -benchtime value (default 1s; use e.g. 1x for a
#              quick single-iteration pass)
#   BENCH      benchmark name regex (default '.')
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
BENCH="${BENCH:-.}"
today="BENCH_$(date +%F).json"

prev=""
for f in $(ls BENCH_*.json 2>/dev/null | sort); do
	[ "$f" = "$today" ] && continue
	prev="$f"
done

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "running benchmarks (benchtime $BENCHTIME)..." >&2
go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" ./... | tee "$raw" >&2

# Benchmark output lines: name, iterations, then value/unit pairs
# (ns/op, B/op, allocs/op, plus any custom metrics, which we skip).
awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
	ns = b = al = ""
	for (i = 3; i + 1 <= NF; i += 2) {
		if ($(i+1) == "ns/op") ns = $i
		else if ($(i+1) == "B/op") b = $i
		else if ($(i+1) == "allocs/op") al = $i
	}
	if (ns != "") {
		row = sprintf("  \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", \
			name, ns, (b == "" ? 0 : b), (al == "" ? 0 : al))
		rows[++n] = row
	}
}
END {
	print "{"
	for (i = 1; i <= n; i++) print rows[i] (i < n ? "," : "")
	print "}"
}
' "$raw" > "$today"
echo "wrote $today" >&2

if [ -n "$prev" ]; then
	echo ""
	echo "delta vs $prev (ns/op):"
	awk -F'"' '
	/ns_op/ {
		name = $2
		val = $0
		sub(/.*"ns_op": /, "", val)
		sub(/[,}].*/, "", val)
		if (FILENAME == ARGV[1]) old[name] = val
		else if (name in old && old[name] + 0 > 0) {
			printf "  %-55s %14.0f -> %14.0f  (%+.1f%%)\n", \
				name, old[name], val, (val - old[name]) / old[name] * 100
		} else {
			printf "  %-55s %14s -> %14.0f  (new)\n", name, "-", val
		}
	}
	' "$prev" "$today"
else
	echo "no previous snapshot; $today is the baseline." >&2
fi
